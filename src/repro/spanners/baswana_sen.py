"""The Baswana–Sen randomized (2k-1)-spanner for weighted graphs.

This is the standard *non-greedy* baseline for general graphs: a linear-time
randomized clustering construction producing a ``(2k-1)``-spanner with
``O(k · n^{1+1/k})`` edges in expectation.  (networkx's ``spanner`` routine
implements the same algorithm; ours is self-contained so the core library has
no networkx dependency, and instrumented the same way as the greedy
implementation.)

The paper's Question 1 asks whether other constructions can be *lighter* than
the greedy spanner; experiment E3/E6 measures Baswana–Sen against greedy on
size and lightness, reproducing the folklore the paper cites (greedy wins by
a wide margin on both).

Algorithm (Baswana & Sen 2007), phase by phase:

* ``k-1`` clustering phases.  Initially every vertex is a singleton cluster.
  In each phase every cluster survives independently with probability
  ``n^{-1/k}``; a vertex adjacent to a surviving cluster joins its nearest
  one through its lightest edge (added to the spanner), and a vertex with no
  adjacent surviving cluster adds its lightest edge to *every* adjacent
  cluster and becomes inactive.
* A final phase where every remaining active vertex adds its lightest edge to
  every adjacent cluster.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.errors import InvalidStretchError
from repro.core.spanner import Spanner
from repro.graph.weighted_graph import Vertex, WeightedGraph


def baswana_sen_spanner(
    graph: WeightedGraph, k: int, *, seed: Optional[int] = None
) -> Spanner:
    """Build a ``(2k-1)``-spanner of ``graph`` with the Baswana–Sen algorithm.

    Parameters
    ----------
    graph:
        The weighted input graph.
    k:
        The stretch parameter; the result is a ``(2k-1)``-spanner with
        ``O(k · n^{1+1/k})`` edges in expectation.
    seed:
        Seed for the cluster-sampling randomness (reproducible runs).
    """
    if k < 1:
        raise InvalidStretchError(f"k must be at least 1, got {k}")
    n = graph.number_of_vertices
    spanner_graph = graph.empty_spanning_subgraph()
    if n == 0:
        return Spanner(base=graph, subgraph=spanner_graph, stretch=float(2 * k - 1),
                       algorithm="baswana-sen")
    if k == 1:
        # A 1-spanner must preserve all distances exactly: keep every edge.
        for u, v, weight in graph.edges():
            spanner_graph.add_edge(u, v, weight)
        return Spanner(base=graph, subgraph=spanner_graph, stretch=1.0,
                       algorithm="baswana-sen")

    rng = random.Random(seed)
    sampling_probability = n ** (-1.0 / k)

    # cluster_of[v] = centre of v's cluster (None once v becomes inactive).
    cluster_of: dict[Vertex, Optional[Vertex]] = {v: v for v in graph.vertices()}
    # Residual edges still under consideration, stored per vertex pair.
    residual = graph.copy()

    def lightest_edge_per_cluster(vertex: Vertex) -> dict[Vertex, tuple[Vertex, float]]:
        """Map each adjacent cluster centre to this vertex's lightest edge into it."""
        best: dict[Vertex, tuple[Vertex, float]] = {}
        for neighbour, weight in residual.incident(vertex):
            centre = cluster_of.get(neighbour)
            if centre is None:
                continue
            if centre not in best or weight < best[centre][1]:
                best[centre] = (neighbour, weight)
        return best

    active = set(graph.vertices())

    for _phase in range(k - 1):
        centres = {c for c in cluster_of.values() if c is not None}
        sampled = {c for c in centres if rng.random() < sampling_probability}

        new_cluster_of: dict[Vertex, Optional[Vertex]] = {}
        for vertex in list(active):
            centre = cluster_of[vertex]
            if centre in sampled:
                # Vertex already belongs to a sampled cluster: nothing to do.
                new_cluster_of[vertex] = centre
                continue
            per_cluster = lightest_edge_per_cluster(vertex)
            sampled_options = {
                c: e for c, e in per_cluster.items() if c in sampled
            }
            if sampled_options:
                # Join the nearest sampled cluster through the lightest edge.
                best_centre, (best_neighbour, best_weight) = min(
                    sampled_options.items(), key=lambda item: item[1][1]
                )
                spanner_graph.add_edge(vertex, best_neighbour, best_weight)
                new_cluster_of[vertex] = best_centre
                # Baswana–Sen rule: additionally connect (once) to every
                # adjacent cluster that is strictly nearer than the chosen
                # sampled cluster, then discard all residual edges into the
                # chosen cluster and into those nearer clusters.
                covered_centres = {best_centre}
                for centre_other, (neighbour, weight) in per_cluster.items():
                    if centre_other != best_centre and weight < best_weight:
                        spanner_graph.add_edge(vertex, neighbour, weight)
                        covered_centres.add(centre_other)
                for neighbour in list(residual.neighbours(vertex)):
                    if cluster_of.get(neighbour) in covered_centres:
                        residual.remove_edge(vertex, neighbour)
            else:
                # No adjacent sampled cluster: connect once to every adjacent
                # cluster and retire from the clustering.
                for _centre, (neighbour, weight) in per_cluster.items():
                    spanner_graph.add_edge(vertex, neighbour, weight)
                for neighbour in list(residual.neighbours(vertex)):
                    residual.remove_edge(vertex, neighbour)
                new_cluster_of[vertex] = None
                active.discard(vertex)

        for vertex in graph.vertices():
            if vertex in new_cluster_of:
                cluster_of[vertex] = new_cluster_of[vertex]
            elif vertex not in active:
                cluster_of[vertex] = None

    # Final phase: every still-active vertex connects to each adjacent cluster.
    for vertex in list(active):
        for _centre, (neighbour, weight) in lightest_edge_per_cluster(vertex).items():
            spanner_graph.add_edge(vertex, neighbour, weight)

    return Spanner(
        base=graph,
        subgraph=spanner_graph,
        stretch=float(2 * k - 1),
        algorithm="baswana-sen",
        metadata={
            "k": float(k),
            "sampling_probability": sampling_probability,
            "expected_size_bound": float(k) * n ** (1.0 + 1.0 / k),
        },
    )


def expected_size_bound(n: int, k: int) -> float:
    """The expected-size bound ``k · n^{1+1/k}`` of the Baswana–Sen spanner."""
    if k < 1:
        raise InvalidStretchError(f"k must be at least 1, got {k}")
    return float(k) * float(n) ** (1.0 + 1.0 / k)
