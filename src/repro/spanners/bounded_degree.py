"""Net-tree based (1+ε)-spanner with bounded degree for doubling metrics.

This is the substrate behind Theorem 2 of the paper ([CGMZ05, GR08c]): every
doubling metric admits a ``(1+ε)``-spanner with degree ``ε^{-O(ddim)}``,
constructible in ``ε^{-O(ddim)} · n log n`` time.  Algorithm
``Approximate-Greedy`` (Section 5) starts from such a spanner, so one is
implemented here.

Construction (the standard net-tree spanner):

1. Build a hierarchy of nested nets ``N_0 ⊇ N_1 ⊇ …`` at scales halving from
   the diameter down to the minimum interpoint distance
   (:class:`~repro.metric.nets.NetHierarchy`).
2. At every level with scale ``r``, connect every pair of net points at
   distance at most ``γ · r`` where ``γ = 4.5 + 16/ε`` (the *cross edges*);
   edge weights are the true metric distances.  (The constant accounts for
   the factor-2 granularity of the scales: a pair at distance ``d`` is
   handled at the coarsest level whose scale ``r`` is at most ``εd/8`` — so
   ``r ≥ εd/16`` — where its net ancestors are at distance at most
   ``d + 4r ≤ γ·r`` and the detour through them costs at most ``8r ≤ εd``.)
3. The union over all levels is a ``(1+ε)``-spanner.

The per-level degree of a net point is bounded by a packing argument
(Lemma 1): within a ball of radius ``γ·r`` there are at most
``(2γ)^{O(ddim)}`` net points at mutual distance more than ``r``.  The naive
union over levels multiplies this by the number of levels a point is a net
centre of; the classical constructions remove this factor with an extra
degree-redistribution step.  We omit that step (documented substitution in
DESIGN.md): the experiments show the measured maximum degree stays far below
the greedy spanner's worst case and essentially flat in ``n``, which is the
behaviour Theorem 2 is used for in the paper.
"""

from __future__ import annotations

import math

from repro.errors import InvalidStretchError
from repro.core.spanner import Spanner
from repro.metric.base import FiniteMetric
from repro.metric.closure import MetricClosure
from repro.metric.nets import NetHierarchy


def bounded_degree_spanner(
    metric: FiniteMetric,
    epsilon: float,
    *,
    scale_factor: float = 0.5,
) -> Spanner:
    """Build the net-tree ``(1+ε)``-spanner of ``metric``.

    Parameters
    ----------
    metric:
        The finite metric space ``(M, δ)``.
    epsilon:
        The stretch slack, ``0 < ε < 1``; the result is a ``(1+ε)``-spanner.
    scale_factor:
        Ratio between consecutive net scales (default ½, the textbook choice).

    Returns
    -------
    Spanner
        A spanner whose base graph is the complete graph of the metric, with
        metadata recording the hierarchy depth and the cross-edge radius
        multiplier γ.
    """
    if not 0.0 < epsilon < 1.0:
        raise InvalidStretchError(f"epsilon must lie in (0, 1), got {epsilon}")

    base = MetricClosure(metric)
    subgraph = base.empty_spanning_subgraph()

    hierarchy = NetHierarchy(metric, scale_factor=scale_factor)
    gamma = 4.5 + 16.0 / epsilon

    for level in hierarchy.levels:
        centres = level.centres
        scale = level.scale
        if scale <= 0.0:
            continue
        reach = gamma * scale
        for i, p in enumerate(centres):
            for q in centres[i + 1:]:
                d = metric.distance(p, q)
                if 0.0 < d <= reach and not subgraph.has_edge(p, q):
                    subgraph.add_edge(p, q, d)

    # The finest level contains every point, so connectivity is guaranteed:
    # consecutive points at the minimum scale are joined whenever they are
    # within γ times the smallest scale, and coarser levels bridge the rest.
    spanner = Spanner(
        base=base,
        subgraph=subgraph,
        stretch=1.0 + epsilon,
        algorithm="net-tree-bounded-degree",
        metadata={
            "levels": float(hierarchy.depth),
            "gamma": gamma,
            "epsilon": epsilon,
        },
    )
    return spanner


def theoretical_degree_bound(epsilon: float, ddim: float) -> float:
    """Dominant term of the Theorem 2 degree bound: ``ε^{-O(ddim)}``.

    Returned without the hidden constant; used by the experiments to annotate
    measured degrees.
    """
    if not 0.0 < epsilon < 1.0:
        raise InvalidStretchError(f"epsilon must lie in (0, 1), got {epsilon}")
    return (1.0 / epsilon) ** max(ddim, 1.0)


def verify_net_tree_stretch(spanner: Spanner, *, sample_pairs: int = 200, seed: int = 7) -> bool:
    """Spot-check the (1+ε) stretch of a net-tree spanner on random pairs.

    Delegates to the batch verification engine's sampled check
    (:func:`~repro.spanners.verification.verify_spanner_sampled`): base
    distances come straight from the metric and the spanner-side distances
    from one cached indexed SSSP row per distinct sampled source, instead of
    the seed's full dict Dijkstra per sampled pair.
    """
    from repro.spanners.verification import verify_spanner_sampled

    return verify_spanner_sampled(spanner, samples=sample_pairs, seed=seed)
