"""Trivial spanner baselines: MST, complete graph, shortest-path tree.

These anchor the two ends of the size/lightness spectrum in the comparison
experiments:

* the **MST** is the lightest possible connected subgraph (lightness exactly
  1) but its stretch can be as bad as ``n - 1``,
* the **complete graph** (or the input graph itself) has stretch exactly 1
  but maximal size and weight,
* a **shortest-path tree** has ``n - 1`` edges and stretch bounded by twice
  the distance to the root, a classic cheap-but-weak baseline for broadcast
  overlays (Section 1.1 of the paper).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.spanner import Spanner
from repro.graph.mst import kruskal_mst
from repro.graph.shortest_paths import dijkstra
from repro.graph.weighted_graph import Vertex, WeightedGraph
from repro.metric.base import FiniteMetric
from repro.metric.closure import MetricClosure


def mst_spanner(graph: WeightedGraph) -> Spanner:
    """Return the MST of ``graph`` packaged as a spanner (stretch up to ``n - 1``)."""
    tree = kruskal_mst(graph)
    return Spanner(
        base=graph,
        subgraph=tree,
        stretch=float(max(graph.number_of_vertices - 1, 1)),
        algorithm="mst",
    )


def metric_mst_spanner(metric: FiniteMetric) -> Spanner:
    """Return the MST of a metric's complete graph without materializing it.

    Dense Prim over the point set: one distance row per step (``n - 1`` rows
    of ``n`` distances, O(n) memory), the same scan order as
    :meth:`MetricClosure.dense_metric_mst_weight` but also recording the tree
    edges — the overlay bench needs the tree itself, and Kruskal on the
    closure would sort all ``n(n-1)/2`` pairs.
    """
    closure = MetricClosure(metric)
    points = list(metric.points())
    n = len(points)
    tree = closure.empty_spanning_subgraph()
    if n > 1:
        if hasattr(metric, "distances_from"):
            def row_of(index: int) -> np.ndarray:
                return np.asarray(metric.distances_from(points[index]), dtype=float)
        else:
            def row_of(index: int) -> np.ndarray:
                source = points[index]
                return np.fromiter(
                    (metric.distance(source, q) for q in points), dtype=float, count=n
                )

        best = row_of(0)
        attach = np.zeros(n, dtype=np.int64)
        in_tree = np.zeros(n, dtype=bool)
        in_tree[0] = True
        for _ in range(n - 1):
            candidate = int(np.argmin(np.where(in_tree, np.inf, best)))
            tree.add_edge(points[candidate], points[int(attach[candidate])], float(best[candidate]))
            in_tree[candidate] = True
            row = row_of(candidate)
            improved = row < best
            best = np.where(improved, row, best)
            attach[improved] = candidate
    return Spanner(
        base=closure,
        subgraph=tree,
        stretch=float(max(n - 1, 1)),
        algorithm="mst",
    )


def identity_spanner(graph: WeightedGraph) -> Spanner:
    """Return the graph itself as a (stretch-1) spanner."""
    return Spanner(base=graph, subgraph=graph.copy(), stretch=1.0, algorithm="identity")


def complete_metric_spanner(metric: FiniteMetric) -> Spanner:
    """Return the complete graph of a metric as the stretch-1 spanner.

    Both the base and the subgraph are lazy :class:`MetricClosure` views —
    the ``n(n-1)/2`` edges exist only as metric queries, never in memory.
    """
    complete = MetricClosure(metric)
    return Spanner(base=complete, subgraph=complete.copy(), stretch=1.0, algorithm="complete")


def shortest_path_tree_spanner(
    graph: WeightedGraph, root: Optional[Vertex] = None
) -> Spanner:
    """Return a shortest-path tree rooted at ``root`` (default: first vertex).

    The stretch of a shortest-path tree is unbounded in general; the spanner
    records ``n - 1`` as a safe upper bound for connected graphs.
    """
    if root is None:
        root = next(iter(graph.vertices()))
    _, predecessors = dijkstra(graph, root)
    tree = graph.empty_spanning_subgraph()
    for vertex, parent in predecessors.items():
        if parent is not None:
            tree.add_edge(vertex, parent, graph.weight(vertex, parent))
    return Spanner(
        base=graph,
        subgraph=tree,
        stretch=float(max(graph.number_of_vertices - 1, 1)),
        algorithm="shortest-path-tree",
        metadata={"root": 0.0},
    )
