"""Trivial spanner baselines: MST, complete graph, shortest-path tree.

These anchor the two ends of the size/lightness spectrum in the comparison
experiments:

* the **MST** is the lightest possible connected subgraph (lightness exactly
  1) but its stretch can be as bad as ``n - 1``,
* the **complete graph** (or the input graph itself) has stretch exactly 1
  but maximal size and weight,
* a **shortest-path tree** has ``n - 1`` edges and stretch bounded by twice
  the distance to the root, a classic cheap-but-weak baseline for broadcast
  overlays (Section 1.1 of the paper).
"""

from __future__ import annotations

from typing import Optional

from repro.core.spanner import Spanner
from repro.graph.mst import kruskal_mst
from repro.graph.shortest_paths import dijkstra
from repro.graph.weighted_graph import Vertex, WeightedGraph
from repro.metric.base import FiniteMetric
from repro.metric.closure import MetricClosure


def mst_spanner(graph: WeightedGraph) -> Spanner:
    """Return the MST of ``graph`` packaged as a spanner (stretch up to ``n - 1``)."""
    tree = kruskal_mst(graph)
    return Spanner(
        base=graph,
        subgraph=tree,
        stretch=float(max(graph.number_of_vertices - 1, 1)),
        algorithm="mst",
    )


def identity_spanner(graph: WeightedGraph) -> Spanner:
    """Return the graph itself as a (stretch-1) spanner."""
    return Spanner(base=graph, subgraph=graph.copy(), stretch=1.0, algorithm="identity")


def complete_metric_spanner(metric: FiniteMetric) -> Spanner:
    """Return the complete graph of a metric as the stretch-1 spanner.

    Both the base and the subgraph are lazy :class:`MetricClosure` views —
    the ``n(n-1)/2`` edges exist only as metric queries, never in memory.
    """
    complete = MetricClosure(metric)
    return Spanner(base=complete, subgraph=complete.copy(), stretch=1.0, algorithm="complete")


def shortest_path_tree_spanner(
    graph: WeightedGraph, root: Optional[Vertex] = None
) -> Spanner:
    """Return a shortest-path tree rooted at ``root`` (default: first vertex).

    The stretch of a shortest-path tree is unbounded in general; the spanner
    records ``n - 1`` as a safe upper bound for connected graphs.
    """
    if root is None:
        root = next(iter(graph.vertices()))
    _, predecessors = dijkstra(graph, root)
    tree = graph.empty_spanning_subgraph()
    for vertex, parent in predecessors.items():
        if parent is not None:
            tree.add_edge(vertex, parent, graph.weight(vertex, parent))
    return Spanner(
        base=graph,
        subgraph=tree,
        stretch=float(max(graph.number_of_vertices - 1, 1)),
        algorithm="shortest-path-tree",
        metadata={"root": 0.0},
    )
