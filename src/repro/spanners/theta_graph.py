"""Θ-graph spanners for planar Euclidean point sets.

The Θ-graph is one of the classic Euclidean spanner constructions the greedy
spanner was compared against in the experimental studies the paper cites
([FG05, Far08]): partition the plane around every point into ``cones`` equal
angular cones and connect the point to the "nearest" point in each cone
(nearest by projection onto the cone's bisector).  With ``cones = κ ≥ 9``
cones the Θ-graph is a ``t(κ)``-spanner with
``t(κ) = 1 / (cos θ − sin θ)``, ``θ = 2π/κ``, and at most ``κ·n`` edges.

It is sparse and fast to build but notoriously *heavy* — exactly the contrast
with the greedy spanner that experiment E6 reproduces.

Only two-dimensional point sets are supported (the construction is specific
to the plane); higher-dimensional workloads use the WSPD spanner instead.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InvalidStretchError, MetricError
from repro.core.spanner import Spanner
from repro.metric.euclidean import EuclideanMetric
from repro.metric.closure import MetricClosure


def theta_graph_stretch(cones: int) -> float:
    """Return the worst-case stretch of the Θ-graph with ``cones`` cones.

    Valid for ``cones ≥ 9`` (below that the classic bound does not apply).
    """
    if cones < 9:
        raise InvalidStretchError("the Θ-graph stretch bound requires at least 9 cones")
    theta = 2.0 * math.pi / cones
    return 1.0 / (math.cos(theta) - math.sin(theta))


def cones_for_stretch(t: float) -> int:
    """Return the smallest cone count whose Θ-graph stretch is at most ``t``."""
    if t <= 1.0:
        raise InvalidStretchError("the Θ-graph cannot achieve stretch 1")
    cones = 9
    while theta_graph_stretch(cones) > t:
        cones += 1
        if cones > 10_000:
            raise InvalidStretchError(f"stretch {t} needs more than 10000 cones")
    return cones


def theta_graph_spanner(metric: EuclideanMetric, cones: int) -> Spanner:
    """Build the Θ-graph on a planar Euclidean metric.

    Parameters
    ----------
    metric:
        A two-dimensional :class:`EuclideanMetric`.
    cones:
        The number of cones κ around every point (κ ≥ 9 for the stretch bound).

    Returns
    -------
    Spanner
        The Θ-graph with stretch bound ``theta_graph_stretch(cones)``.
    """
    if metric.dimension != 2:
        raise MetricError("the Θ-graph construction requires 2-dimensional points")
    if cones < 3:
        raise InvalidStretchError("at least 3 cones are required")

    coordinates = metric.coordinates
    n = coordinates.shape[0]
    base = MetricClosure(metric)
    subgraph = base.empty_spanning_subgraph()

    cone_angle = 2.0 * math.pi / cones
    stretch = theta_graph_stretch(cones) if cones >= 9 else float(cones)

    # One vectorized pass per point: bin every other point into its cone by
    # angle, project onto the cone bisectors, and take the per-cone argmin of
    # the projection via one stable lexsort (ties resolve to the smallest
    # point index, deterministically).  This replaces the former
    # O(n · cones) Python inner loop per point and is what lets the
    # approximate-greedy benches use the Θ-graph substrate at n = 2·10⁴.
    bisectors = -math.pi + (np.arange(cones) + 0.5) * cone_angle
    directions = np.stack([np.cos(bisectors), np.sin(bisectors)], axis=1)

    for p in range(n):
        deltas = coordinates - coordinates[p]
        angles = np.arctan2(deltas[:, 1], deltas[:, 0])  # in (-pi, pi]
        distances = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
        cone_of = np.floor((angles + math.pi) / cone_angle).astype(np.int64)
        np.clip(cone_of, 0, cones - 1, out=cone_of)
        cone_dirs = directions[cone_of]
        projections = deltas[:, 0] * cone_dirs[:, 0] + deltas[:, 1] * cone_dirs[:, 1]

        candidates = np.flatnonzero(distances > 0.0)
        if candidates.size == 0:
            continue
        order = np.lexsort((projections[candidates], cone_of[candidates]))
        ordered_cones = cone_of[candidates][order]
        firsts = np.flatnonzero(
            np.concatenate(([True], ordered_cones[1:] != ordered_cones[:-1]))
        )
        for q in candidates[order[firsts]]:
            subgraph.add_edge(p, int(q), float(distances[q]))

    return Spanner(
        base=base,
        subgraph=subgraph,
        stretch=stretch,
        algorithm="theta-graph",
        metadata={"cones": float(cones)},
    )
