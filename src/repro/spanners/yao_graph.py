"""Yao-graph spanners for planar Euclidean point sets.

The Yao graph is the Θ-graph's sibling and another construction featured in
the experimental studies the paper cites: partition the plane around every
point into ``cones`` equal angular cones and connect the point to the
*nearest point by Euclidean distance* in each cone (the Θ-graph instead picks
the point whose projection on the cone bisector is nearest).  For
``cones = κ > 6`` the Yao graph is a ``t(κ)``-spanner with

    t(κ) = 1 / (1 − 2·sin(π/κ)),

and at most ``κ·n`` edges.  Like the Θ-graph it is fast and sparse but far
heavier than the greedy spanner, which is what the comparison experiment
shows.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InvalidStretchError, MetricError
from repro.core.spanner import Spanner
from repro.metric.euclidean import EuclideanMetric
from repro.metric.closure import MetricClosure


def yao_graph_stretch(cones: int) -> float:
    """Return the worst-case stretch of the Yao graph with ``cones`` cones.

    Valid for ``cones ≥ 7`` (below that ``1 − 2·sin(π/κ)`` is not positive).
    """
    if cones < 7:
        raise InvalidStretchError("the Yao-graph stretch bound requires at least 7 cones")
    denominator = 1.0 - 2.0 * math.sin(math.pi / cones)
    return 1.0 / denominator


def yao_cones_for_stretch(t: float) -> int:
    """Return the smallest cone count whose Yao graph stretch is at most ``t``."""
    if t <= 1.0:
        raise InvalidStretchError("the Yao graph cannot achieve stretch 1")
    cones = 7
    while yao_graph_stretch(cones) > t:
        cones += 1
        if cones > 10_000:
            raise InvalidStretchError(f"stretch {t} needs more than 10000 cones")
    return cones


def yao_graph_spanner(metric: EuclideanMetric, cones: int) -> Spanner:
    """Build the Yao graph on a planar Euclidean metric.

    Parameters
    ----------
    metric:
        A two-dimensional :class:`EuclideanMetric`.
    cones:
        The number of cones κ around every point (κ ≥ 7 for the stretch bound).
    """
    if metric.dimension != 2:
        raise MetricError("the Yao-graph construction requires 2-dimensional points")
    if cones < 3:
        raise InvalidStretchError("at least 3 cones are required")

    coordinates = metric.coordinates
    n = coordinates.shape[0]
    base = MetricClosure(metric)
    subgraph = base.empty_spanning_subgraph()

    cone_angle = 2.0 * math.pi / cones
    stretch = yao_graph_stretch(cones) if cones >= 7 else float(cones)

    for p in range(n):
        deltas = coordinates - coordinates[p]
        angles = np.arctan2(deltas[:, 1], deltas[:, 0])  # in (-pi, pi]
        distances = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
        # Assign every other point to a cone index and keep the nearest per cone.
        cone_indices = np.floor((angles + math.pi) / cone_angle).astype(int)
        cone_indices = np.clip(cone_indices, 0, cones - 1)
        # Nearest point per cone, vectorized: sort candidates by
        # (cone, distance, index) and keep each cone's first entry.  The
        # index tie-break reproduces the scan order of the scalar loop this
        # replaces (first-seen wins on exact distance ties), so the graph is
        # unchanged while the per-point cost drops to one lexsort.
        candidates = np.nonzero(distances > 0.0)[0]
        candidates = candidates[candidates != p]
        if candidates.size == 0:
            continue
        order = np.lexsort(
            (candidates, distances[candidates], cone_indices[candidates])
        )
        sorted_cones = cone_indices[candidates][order]
        first_in_cone = np.ones(order.size, dtype=bool)
        first_in_cone[1:] = sorted_cones[1:] != sorted_cones[:-1]
        for q in candidates[order[first_in_cone]]:
            q = int(q)
            if not subgraph.has_edge(p, q):
                subgraph.add_edge(p, q, float(distances[q]))

    return Spanner(
        base=base,
        subgraph=subgraph,
        stretch=stretch,
        algorithm="yao-graph",
        metadata={"cones": float(cones)},
    )
