"""Well-separated pair decompositions (WSPD) and the WSPD spanner.

The WSPD spanner (Callahan–Kosaraju style) is the other classic Euclidean
construction the experimental studies compare the greedy spanner against: a
split-tree is built over the point set, pairs of tree cells that are
*s-well-separated* (their distance is at least ``s`` times the larger cell
diameter) are enumerated, and one representative edge is added per pair.
With separation ``s = 4(t+1)/(t-1)`` the result is a ``t``-spanner with
``O(s^d · n)`` edges.

Like the Θ-graph it is sparse but much heavier and denser than the greedy
spanner, which is what experiment E6 measures.  The implementation works in
any constant dimension.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import InvalidStretchError
from repro.core.spanner import Spanner
from repro.metric.euclidean import EuclideanMetric
from repro.metric.closure import MetricClosure


@dataclass
class SplitTreeNode:
    """A node of the fair split tree: an axis-aligned cell containing a set of points."""

    indices: list[int]
    bounds_low: np.ndarray
    bounds_high: np.ndarray
    left: Optional["SplitTreeNode"] = None
    right: Optional["SplitTreeNode"] = None
    representative: int = -1
    children: list["SplitTreeNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return len(self.indices) == 1

    def diameter(self) -> float:
        """Return the diameter of the node's bounding box."""
        return float(np.linalg.norm(self.bounds_high - self.bounds_low))

    def centre(self) -> np.ndarray:
        """Return the centre of the bounding box."""
        return (self.bounds_high + self.bounds_low) / 2.0


def build_split_tree(coordinates: np.ndarray) -> SplitTreeNode:
    """Build a fair split tree over ``coordinates`` by recursive longest-axis bisection."""

    def build(indices: list[int]) -> SplitTreeNode:
        points = coordinates[indices]
        low = points.min(axis=0)
        high = points.max(axis=0)
        node = SplitTreeNode(indices=indices, bounds_low=low, bounds_high=high)
        node.representative = indices[0]
        if len(indices) == 1:
            return node
        extents = high - low
        axis = int(np.argmax(extents))
        midpoint = (low[axis] + high[axis]) / 2.0
        left_indices = [i for i in indices if coordinates[i][axis] <= midpoint]
        right_indices = [i for i in indices if coordinates[i][axis] > midpoint]
        if not left_indices or not right_indices:
            # Degenerate split (identical coordinates along the axis): split evenly.
            half = len(indices) // 2
            left_indices, right_indices = indices[:half], indices[half:]
        node.left = build(left_indices)
        node.right = build(right_indices)
        node.children = [node.left, node.right]
        return node

    return build(list(range(coordinates.shape[0])))


def _well_separated(a: SplitTreeNode, b: SplitTreeNode, separation: float) -> bool:
    """Return True if the two cells are s-well-separated (ball-enclosure test)."""
    radius = max(a.diameter(), b.diameter()) / 2.0
    centre_distance = float(np.linalg.norm(a.centre() - b.centre()))
    gap = centre_distance - a.diameter() / 2.0 - b.diameter() / 2.0
    return gap >= separation * radius


def wspd_pairs(
    root: SplitTreeNode, separation: float
) -> list[tuple[SplitTreeNode, SplitTreeNode]]:
    """Enumerate the well-separated pairs of the split tree at the given separation."""
    pairs: list[tuple[SplitTreeNode, SplitTreeNode]] = []

    def find_pairs(a: SplitTreeNode, b: SplitTreeNode) -> None:
        if a is b:
            if a.is_leaf:
                return
            find_pairs(a.left, a.right)
            find_pairs(a.left, a.left)
            find_pairs(a.right, a.right)
            return
        if _well_separated(a, b, separation):
            pairs.append((a, b))
            return
        # Split the node with the larger diameter.
        if a.diameter() >= b.diameter() and not a.is_leaf:
            find_pairs(a.left, b)
            find_pairs(a.right, b)
        elif not b.is_leaf:
            find_pairs(a, b.left)
            find_pairs(a, b.right)
        else:
            find_pairs(a.left, b)
            find_pairs(a.right, b)

    find_pairs(root, root)
    return pairs


def separation_for_stretch(t: float) -> float:
    """Return the separation parameter ``s = 4(t+1)/(t-1)`` giving a ``t``-spanner."""
    if t <= 1.0:
        raise InvalidStretchError("the WSPD spanner cannot achieve stretch 1")
    return 4.0 * (t + 1.0) / (t - 1.0)


def wspd_spanner(metric: EuclideanMetric, t: float) -> Spanner:
    """Build the WSPD ``t``-spanner of a Euclidean metric.

    One edge is added between the representatives of every well-separated
    pair at separation ``4(t+1)/(t-1)``.
    """
    separation = separation_for_stretch(t)
    coordinates = metric.coordinates
    base = MetricClosure(metric)
    subgraph = base.empty_spanning_subgraph()

    root = build_split_tree(coordinates)
    pairs = wspd_pairs(root, separation)
    for a, b in pairs:
        p, q = a.representative, b.representative
        if p != q and not subgraph.has_edge(p, q):
            subgraph.add_edge(p, q, metric.distance(p, q))

    return Spanner(
        base=base,
        subgraph=subgraph,
        stretch=t,
        algorithm="wspd",
        metadata={
            "separation": separation,
            "pairs": float(len(pairs)),
        },
    )
