"""The spanner-builder registry: every construction behind one signature.

The paper compares the greedy spanner against "any other spanner
construction"; the codebase grew eight of them, each with its own calling
convention (``greedy_spanner(graph, t)``, ``theta_graph_spanner(metric,
cones)``, ``baswana_sen_spanner(graph, k)``, ...).  The registry normalises
them behind one uniform signature,

    build_spanner(name, workload, stretch, **params) -> Spanner

where ``workload`` is either a :class:`~repro.graph.weighted_graph.WeightedGraph`
or a :class:`~repro.metric.base.FiniteMetric` (a lazy
:class:`~repro.metric.closure.MetricClosure` counts as its underlying
metric), and ``stretch`` is the target stretch ``t`` from which each builder
derives its native parameter (cones for Θ/Yao, ``k`` for Baswana–Sen,
``ε = t - 1`` for the ``(1+ε)`` constructions).  Explicit ``**params``
override the derivation.

The CLI, the experiments and the distributed overlay layer consume *only*
this registry, so any registered construction can be dropped in as a
broadcast/routing/synchronizer overlay (``repro bench-overlays --builders
theta,yao,mst``).  A builder asked for a workload kind it cannot span raises
:class:`~repro.errors.UnsupportedWorkloadError` — e.g. the planar Θ-graph on
a general graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.core.spanner import Spanner
from repro.errors import UnsupportedWorkloadError
from repro.graph.weighted_graph import WeightedGraph
from repro.metric.base import FiniteMetric
from repro.metric.closure import MetricClosure
from repro.metric.euclidean import EuclideanMetric
from repro.spanners.baswana_sen import baswana_sen_spanner
from repro.spanners.bounded_degree import bounded_degree_spanner
from repro.spanners.theta_graph import cones_for_stretch, theta_graph_spanner
from repro.spanners.trivial import (
    complete_metric_spanner,
    identity_spanner,
    metric_mst_spanner,
    mst_spanner,
)
from repro.spanners.wspd import wspd_spanner
from repro.spanners.yao_graph import yao_cones_for_stretch, yao_graph_spanner

Workload = Union[WeightedGraph, FiniteMetric]

#: ``build(workload, stretch, **params)`` implementation of one construction.
BuildFunction = Callable[..., Spanner]


def as_metric(workload: Workload) -> Optional[FiniteMetric]:
    """Return the metric behind ``workload``, or ``None`` for a plain graph.

    A :class:`MetricClosure` *is* a ``WeightedGraph``, but it represents its
    metric — builders that want the point set unwrap it here, so callers can
    hand either form to the registry interchangeably.
    """
    if isinstance(workload, MetricClosure):
        return workload.metric
    if isinstance(workload, FiniteMetric):
        return workload
    return None


def as_graph(workload: Workload) -> WeightedGraph:
    """Return ``workload`` as a weighted graph (metrics as their lazy closure)."""
    if isinstance(workload, WeightedGraph):
        return workload
    return MetricClosure(workload)


def stretch_epsilon(stretch: float) -> float:
    """Map a target stretch ``t`` to the ``(1+ε)``-family slack ``ε ∈ (0, 1)``.

    Stretches of 2 and above are clamped just below 1 (the constructions
    require ``ε < 1``); the builder records the parameter it actually used.
    """
    return min(stretch - 1.0, 0.99)


def baswana_sen_k(stretch: float) -> int:
    """Largest ``k`` with ``2k - 1 ≤ stretch`` (the Baswana–Sen guarantee)."""
    return max(1, int(math.floor((stretch + 1.0) / 2.0)))


@dataclass(frozen=True)
class SpannerBuilder:
    """One registered spanner construction.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"theta"``.
    description:
        One-line human description used by ``repro list-builders``.
    domain:
        Human-readable statement of the supported workload kinds (quoted in
        :class:`UnsupportedWorkloadError` messages).
    supports:
        Predicate deciding whether a workload is in the builder's domain.
    build_fn:
        The adapter: ``build_fn(workload, stretch, **params) -> Spanner``,
        called only with supported workloads.
    """

    name: str
    description: str
    domain: str
    supports: Callable[[Workload], bool]
    build_fn: BuildFunction

    def build(self, workload: Workload, stretch: float, **params: object) -> Spanner:
        """Build a spanner of ``workload`` targeting ``stretch``."""
        if not self.supports(workload):
            raise UnsupportedWorkloadError(self.name, workload, self.domain)
        return self.build_fn(workload, stretch, **params)


_REGISTRY: dict[str, SpannerBuilder] = {}


def register_builder(builder: SpannerBuilder) -> SpannerBuilder:
    """Add a builder to the registry (overwriting any previous entry)."""
    _REGISTRY[builder.name] = builder
    return builder


def get_builder(name: str) -> SpannerBuilder:
    """Look up a builder by name; raises :class:`KeyError` with the valid names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown spanner builder {name!r}; valid names: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def list_builders(workload: Optional[Workload] = None) -> list[SpannerBuilder]:
    """Return all builders, optionally only those supporting ``workload``."""
    builders = sorted(_REGISTRY.values(), key=lambda b: b.name)
    if workload is None:
        return builders
    return [b for b in builders if b.supports(workload)]


def builder_names() -> list[str]:
    """Return the sorted registry keys."""
    return sorted(_REGISTRY)


def build_spanner(
    name: str, workload: Workload, stretch: float, **params: object
) -> Spanner:
    """Build a spanner with the named construction: the registry entry point."""
    return get_builder(name).build(workload, stretch, **params)


# ---------------------------------------------------------------------------
# Domain predicates
# ---------------------------------------------------------------------------
def _any_workload(workload: Workload) -> bool:
    return isinstance(workload, (WeightedGraph, FiniteMetric))


def _metric_only(workload: Workload) -> bool:
    return as_metric(workload) is not None


def _graph_only(workload: Workload) -> bool:
    return isinstance(workload, WeightedGraph) and not isinstance(workload, MetricClosure)


def _euclidean(workload: Workload) -> bool:
    return isinstance(as_metric(workload), EuclideanMetric)


def _euclidean_2d(workload: Workload) -> bool:
    metric = as_metric(workload)
    return isinstance(metric, EuclideanMetric) and metric.dimension == 2


# ---------------------------------------------------------------------------
# Adapters
# ---------------------------------------------------------------------------
def _build_greedy(workload: Workload, stretch: float, *, oracle: str = "cached") -> Spanner:
    # Imported lazily: `repro.core.approximate_greedy` itself imports spanner
    # modules from this package at load time, so a module-level import here
    # would make the two packages' initialisation mutually recursive.
    from repro.core.greedy import greedy_spanner, greedy_spanner_of_metric

    metric = as_metric(workload)
    if metric is not None:
        return greedy_spanner_of_metric(metric, stretch, oracle=oracle)
    return greedy_spanner(workload, stretch, oracle=oracle)


def _build_greedy_parallel(
    workload: Workload,
    stretch: float,
    *,
    workers: Optional[int] = 1,
    bands: int = 16,
) -> Spanner:
    from repro.core.parallel_greedy import (
        parallel_greedy_spanner,
        parallel_greedy_spanner_of_metric,
    )

    metric = as_metric(workload)
    if metric is not None:
        return parallel_greedy_spanner_of_metric(metric, stretch, workers=workers, bands=bands)
    return parallel_greedy_spanner(workload, stretch, workers=workers, bands=bands)


def _build_approx_greedy(
    workload: Workload,
    stretch: float,
    *,
    epsilon: Optional[float] = None,
    base: Optional[str] = None,
    cluster_mode: str = "incremental",
) -> Spanner:
    from repro.core.approximate_greedy import approximate_greedy_spanner

    metric = as_metric(workload)
    if epsilon is None:
        epsilon = stretch_epsilon(stretch)
    if base is None:
        base = (
            "theta"
            if isinstance(metric, EuclideanMetric) and metric.dimension == 2
            else "net-tree"
        )
    return approximate_greedy_spanner(metric, epsilon, base=base, cluster_mode=cluster_mode)


def _build_theta(workload: Workload, stretch: float, *, cones: Optional[int] = None) -> Spanner:
    metric = as_metric(workload)
    return theta_graph_spanner(metric, cones if cones is not None else cones_for_stretch(stretch))


def _build_yao(workload: Workload, stretch: float, *, cones: Optional[int] = None) -> Spanner:
    metric = as_metric(workload)
    return yao_graph_spanner(metric, cones if cones is not None else yao_cones_for_stretch(stretch))


def _build_wspd(workload: Workload, stretch: float) -> Spanner:
    return wspd_spanner(as_metric(workload), stretch)


def _build_baswana_sen(
    workload: Workload, stretch: float, *, k: Optional[int] = None, seed: Optional[int] = None
) -> Spanner:
    return baswana_sen_spanner(workload, k if k is not None else baswana_sen_k(stretch), seed=seed)


def _build_bounded_degree(
    workload: Workload, stretch: float, *, epsilon: Optional[float] = None, scale_factor: float = 0.5
) -> Spanner:
    metric = as_metric(workload)
    if epsilon is None:
        epsilon = stretch_epsilon(stretch)
    return bounded_degree_spanner(metric, epsilon, scale_factor=scale_factor)


def _build_mst(workload: Workload, stretch: float) -> Spanner:
    metric = as_metric(workload)
    if metric is not None:
        return metric_mst_spanner(metric)
    return mst_spanner(workload)


def _build_complete(workload: Workload, stretch: float) -> Spanner:
    metric = as_metric(workload)
    if metric is not None:
        return complete_metric_spanner(metric)
    return identity_spanner(workload)


def _register_default_builders() -> None:
    register_builder(SpannerBuilder(
        name="greedy",
        description="Algorithm 1, the greedy t-spanner (exact; existentially optimal)",
        domain="weighted graphs and finite metrics",
        supports=_any_workload,
        build_fn=_build_greedy,
    ))
    register_builder(SpannerBuilder(
        name="greedy-parallel",
        description="Algorithm 1 on the CSR + band-parallel path (byte-identical spanner)",
        domain="weighted graphs and finite metrics",
        supports=_any_workload,
        build_fn=_build_greedy_parallel,
    ))
    register_builder(SpannerBuilder(
        name="approx-greedy",
        description="Algorithm Approximate-Greedy (Section 5; near-linear, (1+eps)-stretch)",
        domain="finite metrics",
        supports=_metric_only,
        build_fn=_build_approx_greedy,
    ))
    register_builder(SpannerBuilder(
        name="theta",
        description="Theta-graph on planar Euclidean points (cones from stretch)",
        domain="2-dimensional Euclidean metrics",
        supports=_euclidean_2d,
        build_fn=_build_theta,
    ))
    register_builder(SpannerBuilder(
        name="yao",
        description="Yao graph on planar Euclidean points (cones from stretch)",
        domain="2-dimensional Euclidean metrics",
        supports=_euclidean_2d,
        build_fn=_build_yao,
    ))
    register_builder(SpannerBuilder(
        name="wspd",
        description="WSPD spanner (well-separated pair decomposition)",
        domain="Euclidean metrics",
        supports=_euclidean,
        build_fn=_build_wspd,
    ))
    register_builder(SpannerBuilder(
        name="baswana-sen",
        description="Baswana-Sen randomized (2k-1)-spanner (k from stretch)",
        domain="weighted graphs",
        supports=_graph_only,
        build_fn=_build_baswana_sen,
    ))
    register_builder(SpannerBuilder(
        name="bounded-degree",
        description="Net-tree bounded-degree (1+eps)-spanner (the Theorem 2 substrate)",
        domain="finite metrics",
        supports=_metric_only,
        build_fn=_build_bounded_degree,
    ))
    register_builder(SpannerBuilder(
        name="mst",
        description="Minimum spanning tree (lightness 1, stretch up to n-1)",
        domain="weighted graphs and finite metrics",
        supports=_any_workload,
        build_fn=_build_mst,
    ))
    register_builder(SpannerBuilder(
        name="complete",
        description="The workload itself (stretch 1: complete graph / identity)",
        domain="weighted graphs and finite metrics",
        supports=_any_workload,
        build_fn=_build_complete,
    ))


_register_default_builders()
