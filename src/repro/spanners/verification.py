"""The indexed batch verification engine: stretch checks as fast as builds.

Section 2 of the paper notes that to bound the stretch of a spanner it
suffices to look at the edges of the base graph; :func:`verify_spanner_edges`
implements exactly that check, :func:`verify_spanner_sampled` spot-checks
random vertex pairs, and :func:`stretch_profile` returns the distribution of
per-pair stretches used by the comparison experiments.

Every checker runs in one of two modes:

* ``mode="indexed"`` (the default) — the batch engine.  Base and subgraph
  are translated **once** to :class:`~repro.graph.indexed_graph.IndexedGraph`
  over a shared id map (ids assigned in ``base.vertices()`` order).  Edge
  verification groups the base edges by their smaller endpoint id and runs
  *one* cutoff-bounded Dijkstra per distinct source (cutoff ``t`` times the
  heaviest grouped edge) instead of one per-pair search per edge; the exact
  stretch profile runs one full indexed SSSP per source and reduces the
  per-target ratio rows with vectorized numpy arithmetic.  For lazy
  complete-graph bases (:class:`~repro.metric.closure.MetricClosure`) the
  base distance rows come straight from the metric — vectorized for
  Euclidean point sets — so no search ever touches the Θ(n²) closure.
* ``mode="reference"`` — the seed per-pair implementation: one dict-based
  Dijkstra per base edge / per profile source, kept as the oracle the
  property tests compare the engine against.

The two modes agree *bit for bit*: Dijkstra's settled distances are the
minimum over identical left-associated path sums whatever the relaxation
order, ratios divide the same floats, and the profile reduction is defined
order-independently (per-source ``math.fsum`` rows folded by an outer
``fsum``), so verdicts, profiles and pair counts are hypothesis-tested for
exact equality.  Both modes dedupe pairs by shared-id order — which also
fixes the seed bug where only integer vertices were deduped and e.g.
string-labelled graphs counted every pair twice.

``workers=N`` shards the per-source loops across forked worker processes via
:func:`repro.experiments.harness.run_sharded`; shard order is preserved and
counters merge by addition, so the merged result is identical for 1 and N
workers (property-tested).  ``repro bench-verify`` persists the engine's
deterministic ``verify_settles`` / ``profile_settles`` operation counts to
``BENCH_verify.json``, gated by ``scripts/check_bench_regression.py``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.spanner import Spanner
from repro.graph.indexed_graph import IndexedGraph
from repro.graph.shortest_paths import (
    dijkstra,
    indexed_ball,
    indexed_sssp,
    pair_distance,
)
from repro.graph.weighted_graph import Vertex, WeightedGraph

_MODES = ("indexed", "reference")
_SEARCH_MODES = ("list", "heap")


def check_mode(mode: str) -> None:
    """Reject unknown engine modes (shared by every mode-switched checker)."""
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")


def check_search_mode(search_mode: str) -> None:
    """Reject unknown inner-search engines (the ``mode=`` seam of the kernels)."""
    if search_mode not in _SEARCH_MODES:
        raise ValueError(
            f"search_mode must be one of {_SEARCH_MODES}, got {search_mode!r}"
        )


# ---------------------------------------------------------------------------
# The shared indexed substrate
# ---------------------------------------------------------------------------
class VerificationEngine:
    """Base + subgraph translated once onto a shared dense-id substrate.

    Ids are assigned in ``base.vertices()`` iteration order and shared by the
    subgraph translation, so an id means the same vertex on both sides — the
    property every batch check below relies on.  When the base is a lazy
    complete-graph view over a metric, base distance *rows* are served from
    the metric itself (``δ(u, ·)`` is the direct-edge row by the triangle
    inequality) instead of searching the Θ(n²) closure.
    """

    __slots__ = (
        "base",
        "subgraph",
        "vertices",
        "id_of",
        "metric",
        "base_indexed",
        "sub_indexed",
        "search_mode",
    )

    def __init__(
        self,
        base: WeightedGraph,
        subgraph: WeightedGraph,
        *,
        search_mode: str = "list",
    ) -> None:
        check_search_mode(search_mode)
        self.search_mode = search_mode
        self.base = base
        self.subgraph = subgraph
        self.vertices: list[Vertex] = list(base.vertices())
        self.metric = getattr(base, "metric", None)
        # Lazy closures are never materialized: their base rows come from the
        # metric, so only graph bases get an indexed base translation.
        self.base_indexed: Optional[IndexedGraph] = (
            IndexedGraph.from_weighted_graph(base) if self.metric is None else None
        )
        self.sub_indexed = IndexedGraph(vertices=self.vertices)
        self.id_of = {vertex: vid for vid, vertex in enumerate(self.vertices)}
        for u, v, weight in subgraph.edges():
            self.sub_indexed.append_edge_unchecked_ids(self.id_of[u], self.id_of[v], weight)

    @property
    def n(self) -> int:
        return len(self.vertices)

    # -- distance rows --------------------------------------------------
    def base_row(self, source_id: int) -> tuple[np.ndarray, int]:
        """Return ``(distances from source to every id, settles)`` in the base.

        Metric bases cost zero settles (the row *is* the metric row);
        graph bases pay one full indexed SSSP.
        """
        if self.metric is not None:
            source = self.vertices[source_id]
            distances_from = getattr(self.metric, "distances_from", None)
            if distances_from is not None:
                row = np.asarray(distances_from(source), dtype=float)
            else:
                distance = self.metric.distance
                row = np.fromiter(
                    (distance(source, other) for other in self.vertices),
                    dtype=float,
                    count=self.n,
                )
            return row, 0
        dist, _, settles = indexed_sssp(self.base_indexed, source_id, mode=self.search_mode)
        return np.asarray(dist, dtype=float), settles

    def sub_row(self, source_id: int) -> tuple[np.ndarray, int]:
        """Return ``(distances in the subgraph, settles)`` via one indexed SSSP."""
        dist, _, settles = indexed_sssp(self.sub_indexed, source_id, mode=self.search_mode)
        return np.asarray(dist, dtype=float), settles

    # -- grouped base edges ---------------------------------------------
    def grouped_base_edges(self) -> dict[int, tuple[list[int], list[float]]]:
        """Group the base's edges by their smaller endpoint id.

        Returns ``{source_id: (target_ids, weights)}``; each undirected edge
        appears exactly once, under its smaller id.  Metric bases are *not*
        grouped this way (every pair is an edge) — their edge check runs on
        full rows instead, see :func:`_verify_edges_indexed`.
        """
        grouped: dict[int, tuple[list[int], list[float]]] = {}
        for uid, vid, weight in self.base_indexed.edges():
            slot = grouped.get(uid)
            if slot is None:
                slot = ([], [])
                grouped[uid] = slot
            slot[0].append(vid)
            slot[1].append(weight)
        return grouped


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class EdgeVerification:
    """Outcome and operation counts of one batch edge-verification run."""

    ok: bool
    edges_checked: int
    sources: int
    settles: int

    def counters(self) -> dict[str, float]:
        """The deterministic operation counts the bench trajectory records."""
        return {
            "verify_settles": float(self.settles),
            "verify_sources": float(self.sources),
            "verify_edges_checked": float(self.edges_checked),
        }


@dataclass(frozen=True)
class ProfileStats:
    """Operation counts of one stretch-profile run."""

    sources: int
    settles: int

    def counters(self) -> dict[str, float]:
        return {
            "profile_settles": float(self.settles),
            "profile_sources": float(self.sources),
        }


@dataclass(frozen=True)
class StretchProfile:
    """Summary statistics of the per-pair stretch distribution of a spanner.

    ``mean_stretch`` is defined as ``fsum(per-source row sums) / pairs`` with
    each row itself an ``fsum`` over that source's ratios in shared-id
    order — correctly-rounded partial sums, so the value is independent of
    evaluation order (mode, worker count) and bit-comparable across engines.
    """

    pairs_checked: int
    max_stretch: float
    mean_stretch: float
    fraction_at_stretch_one: float

    def as_row(self) -> dict[str, float]:
        """Return the profile as a flat dictionary (one table row)."""
        return {
            "pairs_checked": float(self.pairs_checked),
            "max_stretch": self.max_stretch,
            "mean_stretch": self.mean_stretch,
            "fraction_at_stretch_one": self.fraction_at_stretch_one,
        }


#: One source's profile partial: (pairs, row_fsum, row_max, pairs_at_one).
_ProfileRow = tuple[int, float, float, int]


def _reduce_profile(rows: Sequence[_ProfileRow]) -> StretchProfile:
    """Fold per-source partial rows into a :class:`StretchProfile`."""
    pairs = sum(row[0] for row in rows)
    if pairs == 0:
        return StretchProfile(0, 1.0, 1.0, 1.0)
    total = math.fsum(row[1] for row in rows)
    worst = max(row[2] for row in rows)
    at_one = sum(row[3] for row in rows)
    return StretchProfile(
        pairs_checked=pairs,
        max_stretch=worst,
        mean_stretch=total / pairs,
        fraction_at_stretch_one=at_one / pairs,
    )


# ---------------------------------------------------------------------------
# Parallel shard workers (module-level so the forked pool can address them;
# the engine itself is inherited by fork, never pickled)
# ---------------------------------------------------------------------------
_PARALLEL_ENGINE: Optional[VerificationEngine] = None
_PARALLEL_PARAMS: dict[str, float] = {}


def _profile_shard(source_ids: list[int]) -> tuple[list[_ProfileRow], dict[str, float]]:
    """Profile one shard of sources on the inherited engine."""
    engine = _PARALLEL_ENGINE
    rows: list[_ProfileRow] = []
    settles = 0
    for source_id in source_ids:
        row, spent = _profile_one_source(engine, source_id)
        rows.append(row)
        settles += spent
    return rows, {"settles": settles}


def _verify_shard(
    shard: list[tuple[int, list[int], list[float]]]
) -> tuple[bool, dict[str, float]]:
    """Verify one shard of grouped edge sources on the inherited engine."""
    engine = _PARALLEL_ENGINE
    t = _PARALLEL_PARAMS["t"]
    tolerance = _PARALLEL_PARAMS["tolerance"]
    settles = 0
    ok = True
    for source_id, targets, weights in shard:
        group_ok, spent = _verify_one_source(engine, source_id, targets, weights, t, tolerance)
        settles += spent
        if not group_ok:
            ok = False
    return ok, {"settles": settles}


def _profile_one_source(
    engine: VerificationEngine, source_id: int
) -> tuple[_ProfileRow, int]:
    """Compute one source's profile partial over targets with larger id."""
    base_row, base_settles = engine.base_row(source_id)
    sub_row, sub_settles = engine.sub_row(source_id)
    targets = slice(source_id + 1, engine.n)
    original = base_row[targets]
    mask = (original > 0.0) & np.isfinite(original)
    original = original[mask]
    if original.size == 0:
        return (0, 0.0, -math.inf, 0), base_settles + sub_settles
    with np.errstate(divide="ignore"):
        ratios = sub_row[targets][mask] / original
    at_one = int(np.count_nonzero(ratios <= 1.0 + 1e-9))
    row = (int(ratios.size), math.fsum(ratios), float(ratios.max()), at_one)
    return row, base_settles + sub_settles


def _verify_one_source(
    engine: VerificationEngine,
    source_id: int,
    targets: list[int],
    weights: list[float],
    t: float,
    tolerance: float,
) -> tuple[bool, int]:
    """Check one source's grouped base edges with a single bounded ball."""
    cutoff = max(t * weight * (1.0 + tolerance) for weight in weights)
    settled = indexed_ball(
        engine.sub_indexed, source_id, cutoff, mode=engine.search_mode
    )
    inf = math.inf
    for target, weight in zip(targets, weights):
        if settled.get(target, inf) > t * weight * (1.0 + tolerance):
            return False, len(settled)
    return True, len(settled)


def _run_engine_shards(task, shards, workers):
    """Run shards through :func:`repro.experiments.harness.run_sharded`.

    Imported lazily to keep the spanners layer import-independent of the
    experiments layer at module load.
    """
    from repro.experiments.harness import run_sharded

    return run_sharded(task, shards, workers=workers)


def _shard_sources(items: list, workers: Optional[int]) -> list[list]:
    from repro.experiments.harness import deterministic_shards, resolve_worker_count

    worker_count = resolve_worker_count(workers)
    # A few shards per worker keeps the pool busy without costing determinism
    # (results are reduced in shard order either way).
    return deterministic_shards(items, max(1, worker_count * 4))


# ---------------------------------------------------------------------------
# Edge verification
# ---------------------------------------------------------------------------
def verify_spanner_edges(
    subgraph: WeightedGraph,
    base: WeightedGraph,
    t: float,
    *,
    tolerance: float = 1e-9,
    mode: str = "indexed",
    search_mode: str = "list",
    workers: Optional[int] = None,
    engine: Optional[VerificationEngine] = None,
) -> bool:
    """Return True if ``subgraph`` stretches no base edge by more than ``t``."""
    return verify_spanner_edges_detailed(
        subgraph,
        base,
        t,
        tolerance=tolerance,
        mode=mode,
        search_mode=search_mode,
        workers=workers,
        engine=engine,
    ).ok


def verify_spanner_edges_detailed(
    subgraph: WeightedGraph,
    base: WeightedGraph,
    t: float,
    *,
    tolerance: float = 1e-9,
    mode: str = "indexed",
    search_mode: str = "list",
    workers: Optional[int] = None,
    engine: Optional[VerificationEngine] = None,
) -> EdgeVerification:
    """Edge verification with the operation counts the bench trajectory records.

    ``search_mode`` selects the indexed engine's inner-search kernel
    (``"list"`` or ``"heap"``); a prebuilt ``engine`` keeps its own setting.
    """
    check_mode(mode)
    if mode == "reference":
        return _verify_edges_reference(subgraph, base, t, tolerance)
    if engine is None:
        engine = VerificationEngine(base, subgraph, search_mode=search_mode)
    return _verify_edges_indexed(engine, t, tolerance, workers)


def _verify_edges_reference(
    subgraph: WeightedGraph, base: WeightedGraph, t: float, tolerance: float
) -> EdgeVerification:
    """The seed check: one early-stopping dict Dijkstra per base edge."""
    settles = 0
    edges_checked = 0
    sources: set[Vertex] = set()
    ok = True
    for u, v, weight in base.edges():
        distances, _ = dijkstra(subgraph, u, targets=[v])
        settles += len(distances)
        edges_checked += 1
        sources.add(u)
        if distances.get(v, math.inf) > t * weight * (1.0 + tolerance):
            ok = False
            break
    return EdgeVerification(ok=ok, edges_checked=edges_checked, sources=len(sources), settles=settles)


def _verify_edges_indexed(
    engine: VerificationEngine, t: float, tolerance: float, workers: Optional[int]
) -> EdgeVerification:
    if engine.metric is not None:
        return _verify_edges_metric(engine, t, tolerance, workers)
    grouped = engine.grouped_base_edges()
    items = [(source_id, targets, weights) for source_id, (targets, weights) in grouped.items()]
    edges_checked = sum(len(targets) for _, targets, _ in items)
    if not items:
        return EdgeVerification(ok=True, edges_checked=0, sources=0, settles=0)
    shards = _shard_sources(items, workers)
    if len(shards) <= 1 or workers is None or workers == 1:
        ok = True
        settles = 0
        for source_id, targets, weights in items:
            group_ok, spent = _verify_one_source(engine, source_id, targets, weights, t, tolerance)
            settles += spent
            if not group_ok:
                ok = False
        return EdgeVerification(ok=ok, edges_checked=edges_checked, sources=len(items), settles=settles)
    global _PARALLEL_ENGINE, _PARALLEL_PARAMS
    _PARALLEL_ENGINE = engine
    _PARALLEL_PARAMS = {"t": t, "tolerance": tolerance}
    try:
        results = _run_engine_shards(_verify_shard, shards, workers)
    finally:
        _PARALLEL_ENGINE = None
        _PARALLEL_PARAMS = {}
    from repro.experiments.harness import merge_counters

    ok = all(shard_ok for shard_ok, _ in results)
    settles = int(merge_counters(counters for _, counters in results).get("settles", 0))
    return EdgeVerification(ok=ok, edges_checked=edges_checked, sources=len(items), settles=settles)


def _verify_edges_metric(
    engine: VerificationEngine, t: float, tolerance: float, workers: Optional[int]
) -> EdgeVerification:
    """Metric bases: every pair is a base edge, so check full rows per source.

    One indexed SSSP over the subgraph per source, compared against the
    metric's distance row with one vectorized comparison — the grouped
    cutoff trick degenerates here (a metric ball at radius ``t·max_w`` is the
    whole space), so full rows are the batch form.
    """
    n = engine.n
    scale = 1.0 + tolerance
    settles = 0
    edges_checked = 0
    ok = True
    for source_id in range(n - 1):
        base_row, base_settles = engine.base_row(source_id)
        sub_row, sub_settles = engine.sub_row(source_id)
        settles += base_settles + sub_settles
        original = base_row[source_id + 1 :]
        mask = original > 0.0
        edges_checked += int(np.count_nonzero(mask))
        if np.any(sub_row[source_id + 1 :][mask] > t * original[mask] * scale):
            ok = False
            break
    return EdgeVerification(
        ok=ok, edges_checked=edges_checked, sources=n - 1 if n else 0, settles=settles
    )


# ---------------------------------------------------------------------------
# Sampled verification
# ---------------------------------------------------------------------------
def _sampled_pair_distances(
    engine: VerificationEngine, pairs: Sequence[tuple[Vertex, Vertex]]
) -> tuple[list[tuple[float, float]], int, int]:
    """Resolve sampled pairs to ``(base_distance, sub_distance)`` tuples.

    The indexed sampled checks share this loop: one cached row per distinct
    sampled source (base rows free on metric bases), pairs with zero or
    infinite base distance skipped.  Returns ``(distances, distinct_sources,
    settles)``.
    """
    id_of = engine.id_of
    base_rows: dict[int, np.ndarray] = {}
    sub_rows: dict[int, np.ndarray] = {}
    distances: list[tuple[float, float]] = []
    settles = 0
    for u, v in pairs:
        uid, vid = id_of[u], id_of[v]
        base_row = base_rows.get(uid)
        if base_row is None:
            base_row, base_settles = engine.base_row(uid)
            base_rows[uid] = base_row
            settles += base_settles
        base_distance = float(base_row[vid])
        if base_distance == 0.0 or math.isinf(base_distance):
            continue
        sub_row = sub_rows.get(uid)
        if sub_row is None:
            sub_row, sub_settles = engine.sub_row(uid)
            sub_rows[uid] = sub_row
            settles += sub_settles
        distances.append((base_distance, float(sub_row[vid])))
    return distances, len(base_rows), settles


def verify_spanner_sampled(
    spanner: Spanner,
    *,
    samples: int = 200,
    seed: Optional[int] = None,
    tolerance: float = 1e-9,
    mode: str = "indexed",
    search_mode: str = "list",
    engine: Optional[VerificationEngine] = None,
) -> bool:
    """Spot-check the stretch guarantee on ``samples`` random vertex pairs.

    Both modes draw the identical seeded pair sequence.  The indexed mode
    caches one full subgraph SSSP row per distinct sampled source, so
    repeated sources (and metric bases, whose base distance is the direct
    edge) cost no extra search; the reference mode is the seed per-pair
    dict Dijkstra, except that lazy closure bases read the base distance
    from the metric (searching the Θ(n²) closure per pair is the slow path
    this engine exists to remove).
    """
    check_mode(mode)
    rng = random.Random(seed)
    vertices = list(spanner.base.vertices())
    if len(vertices) < 2:
        return True
    pairs = [tuple(rng.sample(vertices, 2)) for _ in range(samples)]
    threshold = spanner.stretch * (1.0 + tolerance)

    if mode == "reference":
        metric = getattr(spanner.base, "metric", None)
        for u, v in pairs:
            if metric is not None:
                base_distance = spanner.base.weight(u, v)
            else:
                base_distance = pair_distance(spanner.base, u, v)
            if base_distance == 0.0 or math.isinf(base_distance):
                continue
            if pair_distance(spanner.subgraph, u, v) > threshold * base_distance:
                return False
        return True

    if engine is None:
        engine = VerificationEngine(spanner.base, spanner.subgraph, search_mode=search_mode)
    distances, _, _ = _sampled_pair_distances(engine, pairs)
    return all(
        sub_distance <= threshold * base_distance
        for base_distance, sub_distance in distances
    )


# ---------------------------------------------------------------------------
# Stretch profile
# ---------------------------------------------------------------------------
def stretch_profile(
    spanner: Spanner,
    *,
    exact: bool = True,
    samples: int = 500,
    seed: Optional[int] = None,
    mode: str = "indexed",
    search_mode: str = "list",
    workers: Optional[int] = None,
    sources: Optional[Sequence[Vertex]] = None,
    engine: Optional[VerificationEngine] = None,
) -> StretchProfile:
    """Compute the stretch distribution of a spanner.

    With ``exact=True`` (the default) every vertex pair is measured — each
    unordered pair once, from its smaller shared-id endpoint — via one SSSP
    per source; ``sources`` restricts the exact sweep to the given source
    vertices (their rows stay exact; the bench uses this to profile
    ``n = 10⁴`` instances from a deterministic source shard).  Otherwise
    ``samples`` random pairs are used.
    """
    profile, _ = stretch_profile_detailed(
        spanner,
        exact=exact,
        samples=samples,
        seed=seed,
        mode=mode,
        search_mode=search_mode,
        workers=workers,
        sources=sources,
        engine=engine,
    )
    return profile


def stretch_profile_detailed(
    spanner: Spanner,
    *,
    exact: bool = True,
    samples: int = 500,
    seed: Optional[int] = None,
    mode: str = "indexed",
    search_mode: str = "list",
    workers: Optional[int] = None,
    sources: Optional[Sequence[Vertex]] = None,
    engine: Optional[VerificationEngine] = None,
) -> tuple[StretchProfile, ProfileStats]:
    """:func:`stretch_profile` plus the engine's operation counts."""
    check_mode(mode)
    if not exact:
        return _profile_sampled(spanner, samples, seed, mode, engine, search_mode)
    if mode == "reference":
        return _profile_exact_reference(spanner, sources)
    if engine is None:
        engine = VerificationEngine(spanner.base, spanner.subgraph, search_mode=search_mode)
    if sources is None:
        source_ids = list(range(engine.n))
    else:
        source_ids = [engine.id_of[vertex] for vertex in sources]
    shards = _shard_sources(source_ids, workers)
    if len(shards) <= 1 or workers is None or workers == 1:
        rows: list[_ProfileRow] = []
        settles = 0
        for source_id in source_ids:
            row, spent = _profile_one_source(engine, source_id)
            rows.append(row)
            settles += spent
    else:
        global _PARALLEL_ENGINE
        _PARALLEL_ENGINE = engine
        try:
            results = _run_engine_shards(_profile_shard, shards, workers)
        finally:
            _PARALLEL_ENGINE = None
        from repro.experiments.harness import merge_counters

        rows = [row for shard_rows, _ in results for row in shard_rows]
        settles = int(merge_counters(counters for _, counters in results).get("settles", 0))
    return _reduce_profile(rows), ProfileStats(sources=len(source_ids), settles=settles)


def _profile_exact_reference(
    spanner: Spanner, sources: Optional[Sequence[Vertex]]
) -> tuple[StretchProfile, ProfileStats]:
    """The seed exact profile: one dict Dijkstra pair per source.

    Pairs are deduped by shared-id order for *all* vertex types (the seed
    only deduped integer vertices, double-counting e.g. string-labelled
    pairs), and targets are enumerated in id order so the per-source rows
    line up with the indexed engine's bit for bit.
    """
    vertices = list(spanner.base.vertices())
    id_of = {vertex: vid for vid, vertex in enumerate(vertices)}
    metric = getattr(spanner.base, "metric", None)
    chosen = vertices if sources is None else list(sources)
    rows: list[_ProfileRow] = []
    settles = 0
    for source in chosen:
        source_id = id_of[source]
        if metric is None:
            base_distances, _ = dijkstra(spanner.base, source)
            settles += len(base_distances)
        else:
            base_distances = None
        spanner_distances, _ = dijkstra(spanner.subgraph, source)
        settles += len(spanner_distances)
        ratios: list[float] = []
        at_one = 0
        for target in vertices[source_id + 1 :]:
            if base_distances is None:
                original = metric.distance(source, target)
            else:
                original = base_distances.get(target, math.inf)
            if original == 0.0 or math.isinf(original):
                continue
            ratio = spanner_distances.get(target, math.inf) / original
            ratios.append(ratio)
            if ratio <= 1.0 + 1e-9:
                at_one += 1
        if ratios:
            rows.append((len(ratios), math.fsum(ratios), max(ratios), at_one))
        else:
            rows.append((0, 0.0, -math.inf, 0))
    return _reduce_profile(rows), ProfileStats(sources=len(chosen), settles=settles)


def _profile_sampled(
    spanner: Spanner,
    samples: int,
    seed: Optional[int],
    mode: str,
    engine: Optional[VerificationEngine],
    search_mode: str = "list",
) -> tuple[StretchProfile, ProfileStats]:
    """Sampled profile; the indexed mode caches one SSSP row per sampled source."""
    rng = random.Random(seed)
    vertices = list(spanner.base.vertices())
    stretches: list[float] = []
    settles = 0
    if mode == "reference":
        metric = getattr(spanner.base, "metric", None)
        for _ in range(samples):
            u, v = rng.sample(vertices, 2)
            if metric is not None:
                original = spanner.base.weight(u, v)
            else:
                original = pair_distance(spanner.base, u, v)
            if original == 0.0 or math.isinf(original):
                continue
            stretches.append(pair_distance(spanner.subgraph, u, v) / original)
        return _profile_from_samples(stretches), ProfileStats(sources=samples, settles=0)

    if engine is None:
        engine = VerificationEngine(spanner.base, spanner.subgraph, search_mode=search_mode)
    pairs = [tuple(rng.sample(vertices, 2)) for _ in range(samples)]
    distances, sources, settles = _sampled_pair_distances(engine, pairs)
    stretches = [sub_distance / base_distance for base_distance, sub_distance in distances]
    return _profile_from_samples(stretches), ProfileStats(sources=sources, settles=settles)


def _profile_from_samples(stretches: list[float]) -> StretchProfile:
    """Reduce a flat sampled ratio list (one ``fsum``; sampled rows have no
    per-source structure to preserve)."""
    if not stretches:
        return StretchProfile(0, 1.0, 1.0, 1.0)
    at_one = sum(1 for s in stretches if s <= 1.0 + 1e-9)
    return StretchProfile(
        pairs_checked=len(stretches),
        max_stretch=max(stretches),
        mean_stretch=math.fsum(stretches) / len(stretches),
        fraction_at_stretch_one=at_one / len(stretches),
    )
