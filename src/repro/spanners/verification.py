"""Stretch verification utilities shared by tests, examples and benchmarks.

Section 2 of the paper notes that to bound the stretch of a spanner it
suffices to look at the edges of the base graph; :func:`verify_spanner_edges`
implements exactly that check.  For large instances an exact check is too
slow, so :func:`verify_spanner_sampled` spot-checks random vertex pairs, and
:func:`stretch_profile` returns the distribution of per-pair stretches used
by the comparison experiment's summary statistics.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.core.spanner import Spanner
from repro.graph.shortest_paths import pair_distance, single_source_distances
from repro.graph.weighted_graph import WeightedGraph


def verify_spanner_edges(
    subgraph: WeightedGraph, base: WeightedGraph, t: float, *, tolerance: float = 1e-9
) -> bool:
    """Return True if ``subgraph`` stretches no base edge by more than ``t``."""
    for u, v, weight in base.edges():
        if pair_distance(subgraph, u, v) > t * weight * (1.0 + tolerance):
            return False
    return True


def verify_spanner_sampled(
    spanner: Spanner,
    *,
    samples: int = 200,
    seed: Optional[int] = None,
    tolerance: float = 1e-9,
) -> bool:
    """Spot-check the stretch guarantee on ``samples`` random vertex pairs."""
    rng = random.Random(seed)
    vertices = list(spanner.base.vertices())
    if len(vertices) < 2:
        return True
    for _ in range(samples):
        u, v = rng.sample(vertices, 2)
        base_distance = pair_distance(spanner.base, u, v)
        if base_distance == 0.0 or math.isinf(base_distance):
            continue
        if pair_distance(spanner.subgraph, u, v) > spanner.stretch * base_distance * (
            1.0 + tolerance
        ):
            return False
    return True


@dataclass(frozen=True)
class StretchProfile:
    """Summary statistics of the per-pair stretch distribution of a spanner."""

    pairs_checked: int
    max_stretch: float
    mean_stretch: float
    fraction_at_stretch_one: float

    def as_row(self) -> dict[str, float]:
        """Return the profile as a flat dictionary (one table row)."""
        return {
            "pairs_checked": float(self.pairs_checked),
            "max_stretch": self.max_stretch,
            "mean_stretch": self.mean_stretch,
            "fraction_at_stretch_one": self.fraction_at_stretch_one,
        }


def stretch_profile(
    spanner: Spanner,
    *,
    exact: bool = True,
    samples: int = 500,
    seed: Optional[int] = None,
) -> StretchProfile:
    """Compute the stretch distribution of a spanner.

    With ``exact=True`` (the default) every vertex pair is measured via
    all-pairs Dijkstra; otherwise ``samples`` random pairs are used.
    """
    vertices = list(spanner.base.vertices())
    stretches: list[float] = []

    if exact:
        for source in vertices:
            base_distances = single_source_distances(spanner.base, source)
            spanner_distances = single_source_distances(spanner.subgraph, source)
            for target, original in base_distances.items():
                if target <= source if isinstance(target, int) and isinstance(source, int) else target == source:
                    continue
                if original == 0.0:
                    continue
                stretches.append(spanner_distances.get(target, math.inf) / original)
    else:
        rng = random.Random(seed)
        for _ in range(samples):
            u, v = rng.sample(vertices, 2)
            original = pair_distance(spanner.base, u, v)
            if original == 0.0 or math.isinf(original):
                continue
            stretches.append(pair_distance(spanner.subgraph, u, v) / original)

    if not stretches:
        return StretchProfile(0, 1.0, 1.0, 1.0)
    at_one = sum(1 for s in stretches if s <= 1.0 + 1e-9)
    return StretchProfile(
        pairs_checked=len(stretches),
        max_stretch=max(stretches),
        mean_stretch=sum(stretches) / len(stretches),
        fraction_at_stretch_one=at_one / len(stretches),
    )
