"""Baseline spanner constructions: the "any other spanner" side of the comparisons."""

from repro.spanners.baswana_sen import baswana_sen_spanner, expected_size_bound
from repro.spanners.registry import (
    SpannerBuilder,
    build_spanner,
    builder_names,
    get_builder,
    list_builders,
    register_builder,
)
from repro.spanners.bounded_degree import bounded_degree_spanner, theoretical_degree_bound
from repro.spanners.theta_graph import (
    cones_for_stretch,
    theta_graph_spanner,
    theta_graph_stretch,
)
from repro.spanners.trivial import (
    complete_metric_spanner,
    identity_spanner,
    metric_mst_spanner,
    mst_spanner,
    shortest_path_tree_spanner,
)
from repro.spanners.verification import (
    EdgeVerification,
    ProfileStats,
    StretchProfile,
    VerificationEngine,
    stretch_profile,
    stretch_profile_detailed,
    verify_spanner_edges,
    verify_spanner_edges_detailed,
    verify_spanner_sampled,
)
from repro.spanners.wspd import build_split_tree, separation_for_stretch, wspd_pairs, wspd_spanner
from repro.spanners.yao_graph import yao_cones_for_stretch, yao_graph_spanner, yao_graph_stretch

__all__ = [
    "SpannerBuilder",
    "build_spanner",
    "builder_names",
    "get_builder",
    "list_builders",
    "register_builder",
    "baswana_sen_spanner",
    "expected_size_bound",
    "metric_mst_spanner",
    "bounded_degree_spanner",
    "theoretical_degree_bound",
    "cones_for_stretch",
    "theta_graph_spanner",
    "theta_graph_stretch",
    "complete_metric_spanner",
    "identity_spanner",
    "mst_spanner",
    "shortest_path_tree_spanner",
    "EdgeVerification",
    "ProfileStats",
    "StretchProfile",
    "VerificationEngine",
    "stretch_profile",
    "stretch_profile_detailed",
    "verify_spanner_edges",
    "verify_spanner_edges_detailed",
    "verify_spanner_sampled",
    "build_split_tree",
    "separation_for_stretch",
    "wspd_pairs",
    "wspd_spanner",
    "yao_cones_for_stretch",
    "yao_graph_spanner",
    "yao_graph_stretch",
]
