"""Experiment harness: workloads, runners and the per-claim experiments of DESIGN.md."""

from repro.experiments.harness import (
    ExperimentResult,
    Stopwatch,
    deterministic_shards,
    merge_counters,
    run_sharded,
    timed,
)
from repro.experiments.reporting import render_comparison, render_table
from repro.experiments.workloads import WorkloadSpec, get_workload, list_workloads, register
from repro.experiments.experiments import (
    experiment_approximate_greedy,
    experiment_broadcast,
    experiment_build_matrix,
    experiment_comparison,
    experiment_degree,
    experiment_doubling_metrics,
    experiment_figure1,
    experiment_general_graphs,
    experiment_lemma3,
    experiment_oracle_matrix,
    experiment_overlay_matrix,
    experiment_routing,
    experiment_verify_matrix,
    run_all_experiments,
)
from repro.experiments.oracle_bench import (
    euclidean_workload,
    graph_workload,
    merge_run_into_file,
    run_oracle_matrix,
    workload_key,
)
from repro.experiments.overlay_bench import (
    OVERLAY_PRESETS,
    geometric_workload,
    run_overlay_bench,
)
from repro.experiments.verify_bench import (
    VERIFY_PRESETS,
    run_verify_bench,
    verify_workload,
)
from repro.experiments.build_bench import (
    BUILD_PRESETS,
    bucketed_workload,
    run_build_bench,
)

__all__ = [
    "ExperimentResult",
    "Stopwatch",
    "timed",
    "deterministic_shards",
    "merge_counters",
    "run_sharded",
    "render_comparison",
    "render_table",
    "WorkloadSpec",
    "get_workload",
    "list_workloads",
    "register",
    "experiment_approximate_greedy",
    "experiment_broadcast",
    "experiment_build_matrix",
    "experiment_comparison",
    "experiment_degree",
    "experiment_doubling_metrics",
    "experiment_figure1",
    "experiment_general_graphs",
    "experiment_lemma3",
    "experiment_oracle_matrix",
    "experiment_overlay_matrix",
    "experiment_routing",
    "experiment_verify_matrix",
    "run_all_experiments",
    "euclidean_workload",
    "graph_workload",
    "merge_run_into_file",
    "run_oracle_matrix",
    "workload_key",
    "OVERLAY_PRESETS",
    "geometric_workload",
    "run_overlay_bench",
    "VERIFY_PRESETS",
    "run_verify_bench",
    "verify_workload",
    "BUILD_PRESETS",
    "bucketed_workload",
    "run_build_bench",
]
