"""Named workload registry used by examples, tests and benchmarks.

A *workload* is a reproducible instance (a graph or a metric space) with a
descriptive name, a seed and the parameters used to generate it.  Keeping the
registry in one place guarantees that the numbers reported in EXPERIMENTS.md
and the numbers produced by ``pytest benchmarks/`` come from identical
instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Union

from repro.errors import UnknownWorkloadError
from repro.graph.generators import (
    grid_graph,
    gnm_random_graph,
    random_connected_graph,
    random_geometric_graph,
)
from repro.graph.weighted_graph import WeightedGraph
from repro.metric.base import FiniteMetric
from repro.metric.generators import (
    circle_points,
    clustered_points,
    concentric_shells_metric,
    grid_points,
    spiral_points,
    uniform_points,
)

Workload = Union[WeightedGraph, FiniteMetric]
WorkloadFactory = Callable[[], Workload]


@dataclass(frozen=True)
class WorkloadSpec:
    """A named, reproducible workload.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"uniform-2d-200"``.
    kind:
        ``"graph"`` or ``"metric"``.
    description:
        One-line human description used in reports.
    factory:
        Zero-argument callable producing the instance.
    parameters:
        The generation parameters, recorded for the report.
    """

    name: str
    kind: str
    description: str
    factory: WorkloadFactory
    parameters: dict[str, float] = field(default_factory=dict)

    def build(self) -> Workload:
        """Instantiate the workload."""
        return self.factory()


_REGISTRY: dict[str, WorkloadSpec] = {}


def register(spec: WorkloadSpec) -> WorkloadSpec:
    """Add a workload to the registry (overwriting any previous entry with the name)."""
    _REGISTRY[spec.name] = spec
    return spec


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload by name."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise UnknownWorkloadError(name) from exc


def list_workloads(kind: str | None = None) -> list[WorkloadSpec]:
    """Return all registered workloads, optionally filtered by kind."""
    specs = sorted(_REGISTRY.values(), key=lambda s: s.name)
    if kind is None:
        return specs
    return [s for s in specs if s.kind == kind]


def _register_default_workloads() -> None:
    """Populate the registry with the workloads referenced by DESIGN.md."""
    register(WorkloadSpec(
        name="random-graph-small",
        kind="graph",
        description="Random connected graph, n=60, extra edge prob 0.15, weights U[1,10]",
        factory=lambda: random_connected_graph(60, 0.15, seed=11),
        parameters={"n": 60, "p": 0.15, "seed": 11},
    ))
    register(WorkloadSpec(
        name="random-graph-medium",
        kind="graph",
        description="Random connected graph, n=150, extra edge prob 0.08, weights U[1,10]",
        factory=lambda: random_connected_graph(150, 0.08, seed=12),
        parameters={"n": 150, "p": 0.08, "seed": 12},
    ))
    register(WorkloadSpec(
        name="dense-gnm",
        kind="graph",
        description="Random G(n,m) graph, n=100, m=1500 (dense), weights U[1,10]",
        factory=lambda: _connected_gnm(100, 1500, seed=13),
        parameters={"n": 100, "m": 1500, "seed": 13},
    ))
    register(WorkloadSpec(
        name="grid-graph",
        kind="graph",
        description="12x12 unit-weight grid",
        factory=lambda: grid_graph(12, 12),
        parameters={"rows": 12, "cols": 12},
    ))
    register(WorkloadSpec(
        name="geometric-network",
        kind="graph",
        description="Random geometric graph, n=120, radius 0.18 (wireless-network style)",
        factory=lambda: random_geometric_graph(120, 0.18, seed=14),
        parameters={"n": 120, "radius": 0.18, "seed": 14},
    ))
    register(WorkloadSpec(
        name="uniform-2d-small",
        kind="metric",
        description="80 uniform points in the unit square",
        factory=lambda: uniform_points(80, 2, seed=21),
        parameters={"n": 80, "d": 2, "seed": 21},
    ))
    register(WorkloadSpec(
        name="uniform-2d-medium",
        kind="metric",
        description="200 uniform points in the unit square",
        factory=lambda: uniform_points(200, 2, seed=22),
        parameters={"n": 200, "d": 2, "seed": 22},
    ))
    register(WorkloadSpec(
        name="uniform-3d",
        kind="metric",
        description="120 uniform points in the unit cube",
        factory=lambda: uniform_points(120, 3, seed=23),
        parameters={"n": 120, "d": 3, "seed": 23},
    ))
    register(WorkloadSpec(
        name="clustered-2d",
        kind="metric",
        description="150 points in 6 tight Gaussian clusters",
        factory=lambda: clustered_points(150, 2, clusters=6, seed=24),
        parameters={"n": 150, "d": 2, "clusters": 6, "seed": 24},
    ))
    register(WorkloadSpec(
        name="circle",
        kind="metric",
        description="100 points on a circle (doubling dimension 1)",
        factory=lambda: circle_points(100, seed=25),
        parameters={"n": 100, "seed": 25},
    ))
    register(WorkloadSpec(
        name="grid-2d-metric",
        kind="metric",
        description="10x10 grid of points",
        factory=lambda: grid_points(10, 2),
        parameters={"side": 10, "d": 2},
    ))
    register(WorkloadSpec(
        name="spiral",
        kind="metric",
        description="120 points on an Archimedean spiral",
        factory=lambda: spiral_points(120, seed=26),
        parameters={"n": 120, "seed": 26},
    ))
    register(WorkloadSpec(
        name="concentric-shells",
        kind="metric",
        description="Concentric shells (greedy-degree adversary), 8 shells of 12 points",
        factory=lambda: concentric_shells_metric(8, 12),
        parameters={"shells": 8, "points_per_shell": 12},
    ))
    # Large-n scenarios for the Approximate-Greedy scale rows of
    # `repro bench-oracles` — beyond the exact greedy's reach (use the
    # approx-greedy strategies or expect hours).
    register(WorkloadSpec(
        name="uniform-2d-xl",
        kind="metric",
        description="20000 uniform points in the unit square (approx-greedy scale)",
        factory=lambda: uniform_points(20000, 2, seed=43),
        parameters={"n": 20000, "d": 2, "seed": 43},
    ))
    register(WorkloadSpec(
        name="clustered-2d-large",
        kind="metric",
        description="10000 points in 50 tight Gaussian clusters (approx-greedy scale)",
        factory=lambda: clustered_points(10000, 2, clusters=50, seed=41),
        parameters={"n": 10000, "d": 2, "clusters": 50, "seed": 41},
    ))
    register(WorkloadSpec(
        name="grid-2d-large",
        kind="metric",
        description="100x100 grid of points (approx-greedy scale, maximal ties)",
        factory=lambda: grid_points(100, 2),
        parameters={"side": 100, "d": 2},
    ))
    register(WorkloadSpec(
        name="uniform-8d",
        kind="metric",
        description="500 uniform points in the 8-cube (high-dim net-tree substrate)",
        factory=lambda: uniform_points(500, 8, seed=42),
        parameters={"n": 500, "d": 8, "seed": 42},
    ))


def _connected_gnm(n: int, m: int, *, seed: int) -> WeightedGraph:
    """Return a G(n, m) graph, resampling the seed until it is connected."""
    from repro.graph.traversal import is_connected

    attempt = 0
    while True:
        graph = gnm_random_graph(n, m, seed=seed + attempt)
        if is_connected(graph):
            return graph
        attempt += 1


_register_default_workloads()
