"""Overlay benchmark matrix: the perf trajectory behind ``repro bench-overlays``.

The Section 1.1 applications — broadcast, compact routing, synchronizers —
are what light, sparse spanners are *for*; this bench measures them end to
end on the indexed overlay engine.  One run takes a workload (a graph or a
metric), builds one overlay per requested registry builder
(:mod:`repro.spanners.registry`), and drives all three protocols over each
overlay with shared inputs:

* **broadcast** — an indexed flood plus echo convergecast: message count,
  weighted communication cost, last-delivery delay and its stretch against
  the source's true eccentricity;
* **routing** — flat numpy next-hop tables restricted to the demand
  destinations, route-stretch percentiles over a seeded demand set, and the
  tables' byte footprint;
* **synchronizer** — per-pulse α-cost on the overlay; the pulse delay is the
  exact weighted diameter up to ``n = 2000`` and the double-sweep lower
  bound beyond (recorded in the run).

Besides wall-clock seconds, every row records the deterministic
``overlay_*`` operation counts (heap settles and event-loop pops), which
``scripts/check_bench_regression.py`` diffs against the committed baseline
in ``benchmarks/BENCH_overlays.json`` exactly like the oracle counters —
machine-independent, noise-free regression gating.

Metric workloads never materialize the Θ(n²) complete graph: overlays are
built from the streamed registry constructions, and the stretch references
(eccentricity, per-demand optimal distance) come straight from the metric —
which is what lets the matrix reach ``n = 10⁴``, where the seed dict
simulator stopped around ``n = 400``.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.graph.io import atomic_write_json
from repro.distributed.broadcast import broadcast_over_overlay
from repro.distributed.routing import RoutingScheme, evaluate_routing, random_demands
from repro.distributed.synchronizer import synchronizer_cost
from repro.experiments.oracle_bench import (
    _build_instance as _build_oracle_instance,
    workload_key as _oracle_workload_key,
)
from repro.graph.generators import random_geometric_graph
from repro.graph.shortest_paths import single_source_distances
from repro.graph.weighted_graph import WeightedGraph
from repro.metric.base import FiniteMetric
from repro.spanners.registry import build_spanner

SCHEMA_VERSION = 1

#: Parameter pins applied whenever a builder is requested by bare name.
#: Baswana–Sen's ``k`` is pinned to 2 (a 3-spanner): deriving it from a
#: sub-3 workload stretch would give ``k = 1``, the degenerate identity
#: overlay — this mirrors the E7/E9 experiments, which bench the 3-spanner
#: as the sparse-but-heavier baseline at every stretch.  The seed pin keeps
#: the randomized construction's ``overlay_*`` operation counts
#: deterministic, which the regression gate requires.
DEFAULT_BUILDER_PARAMS: dict[str, dict[str, object]] = {
    "baswana-sen": {"k": 2, "seed": 7},
}

#: Builders benched by default on graph workloads.
DEFAULT_GRAPH_BUILDERS = ("greedy", "baswana-sen", "mst")


def normalize_builders(
    builders: Sequence[str] | dict[str, dict[str, object]],
) -> dict[str, dict[str, object]]:
    """Expand bare builder names into ``{label: params}`` with the default pins.

    An explicit mapping is taken verbatim — callers that spell out params
    own all of them.
    """
    if isinstance(builders, dict):
        return {label: dict(spec) for label, spec in builders.items()}
    return {name: dict(DEFAULT_BUILDER_PARAMS.get(name, {})) for name in builders}

#: Builders benched by default on planar Euclidean workloads.
DEFAULT_METRIC_BUILDERS = ("theta", "yao", "mst", "greedy")

#: The deterministic operation counts the regression checker compares.
OPERATION_COUNT_KEYS = (
    "overlay_broadcast_messages",
    "overlay_broadcast_events",
    "overlay_route_settles",
    "overlay_sync_settles",
)

#: Exact-diameter cutoff: beyond this the synchronizer row records the
#: double-sweep lower bound (the exact diameter is the only quadratic step).
EXACT_DIAMETER_LIMIT = 2000


def geometric_workload(
    n: int = 300, radius: float = 0.12, seed: int = 7, stretch: float = 1.5
) -> dict[str, object]:
    """A random geometric ("wireless") graph workload, the E7 setting."""
    return {
        "kind": "geometric",
        "n": int(n),
        "radius": float(radius),
        "seed": int(seed),
        "stretch": float(stretch),
    }


def workload_key(workload: dict[str, object]) -> str:
    """Stable run key of an overlay workload (joins baseline and fresh runs)."""
    if workload["kind"] == "geometric":
        return "geometric-n{}-r{}-seed{}-t{}".format(
            int(workload["n"]), float(workload["radius"]), int(workload["seed"]),
            float(workload["stretch"]),
        )
    return _oracle_workload_key(workload)


def _build_instance(
    workload: dict[str, object],
) -> tuple[WeightedGraph, Optional[FiniteMetric]]:
    """Instantiate a workload as ``(graph, metric)`` (``metric`` None for graphs)."""
    if workload["kind"] == "geometric":
        graph = random_geometric_graph(
            int(workload["n"]), float(workload["radius"]), seed=int(workload["seed"])
        )
        return graph, None
    return _build_oracle_instance(workload)


def _build_presets() -> dict[str, tuple[dict[str, object], tuple[str, ...]]]:
    """The named rows of the overlay matrix, keyed by workload signature.

    The first two rows are CI-sized (regenerated and gated on every run);
    the ``n = 2000`` and ``n = 10⁴`` rows are the committed evidence that
    the indexed engine carries all four registry overlays far beyond the
    seed simulator's ``n ≈ 400`` ceiling.
    """
    from repro.experiments.oracle_bench import euclidean_workload

    rows: tuple[tuple[dict[str, object], Sequence[str] | dict[str, dict[str, object]]], ...] = (
        (geometric_workload(n=300), DEFAULT_GRAPH_BUILDERS),
        (euclidean_workload(n=400, stretch=1.5), DEFAULT_METRIC_BUILDERS),
        (euclidean_workload(n=2000, stretch=1.5), ("theta", "yao", "mst", "approx-greedy")),
        (euclidean_workload(n=10000, stretch=1.5), ("theta", "yao", "mst", "approx-greedy")),
    )
    return {workload_key(workload): (workload, strategies) for workload, strategies in rows}


#: workload key -> (workload description, default builders for the row).
OVERLAY_PRESETS = _build_presets()


def run_overlay_bench(
    workload: dict[str, object],
    builders: Sequence[str] | dict[str, dict[str, object]],
    *,
    demand_count: int = 32,
    demand_seed: int = 97,
    pulses: int = 10,
) -> dict[str, object]:
    """Bench every builder's overlay on one workload; returns one run record.

    ``builders`` is a sequence of registry names (expanded through
    :func:`normalize_builders`, so e.g. a bare ``"baswana-sen"`` gets its
    pinned ``k``/``seed``), or a mapping ``{label: {"builder": name,
    **params}}`` when per-builder parameters must override the defaults
    (``"builder"`` defaults to the label).  The record mirrors the oracle
    bench's shape (``"strategies"`` keyed by builder label) so
    :func:`scripts.check_bench_regression.find_regressions` gates both
    files with the same code.
    """
    graph, metric = _build_instance(workload)
    stretch = float(workload["stretch"])
    n = graph.number_of_vertices

    source = next(iter(graph.vertices()))
    demands = random_demands(graph, demand_count, seed=demand_seed)
    destinations = sorted({destination for _, destination in demands}, key=repr)
    diameter_method = "exact" if n <= EXACT_DIAMETER_LIMIT else "double-sweep"

    # Stretch references, computed once per workload.  For metrics both come
    # straight from the point set (the complete graph's shortest path is the
    # direct edge); a Dijkstra over the lazy closure would be Θ(n²).
    if metric is not None:
        if hasattr(metric, "distances_from"):
            farthest_optimal = float(max(metric.distances_from(source), default=0.0))
        else:
            farthest_optimal = max(
                (metric.distance(source, point) for point in metric.points()
                 if point != source),
                default=0.0,
            )
        optimal_distance = metric.distance
    else:
        reference = single_source_distances(graph, source)
        farthest_optimal = max(reference.values(), default=0.0)
        optimal_distance = None  # per-demand Dijkstra in the full graph

    records: dict[str, dict[str, float]] = {}
    for name, spec in normalize_builders(builders).items():
        params = dict(spec)
        builder_name = str(params.pop("builder", name))
        start = time.perf_counter()
        spanner = build_spanner(
            builder_name, metric if metric is not None else graph, stretch, **params
        )
        build_seconds = time.perf_counter() - start
        overlay = spanner.subgraph

        start = time.perf_counter()
        broadcast = broadcast_over_overlay(
            graph, overlay, source, name=name, mode="indexed",
            farthest_optimal=farthest_optimal,
        )
        scheme = RoutingScheme(overlay, mode="indexed", destinations=destinations)
        routing = evaluate_routing(
            graph, overlay, demands, name=name, scheme=scheme,
            optimal_distance=optimal_distance,
        )
        synchronizer = synchronizer_cost(
            overlay, name=name, pulses=pulses, mode="indexed",
            diameter_method=diameter_method,
        )
        protocol_seconds = time.perf_counter() - start

        record: dict[str, float] = {
            "build_seconds": build_seconds,
            "protocol_seconds": protocol_seconds,
            "spanner_edges": float(overlay.number_of_edges),
            "overlay_weight": overlay.total_weight(),
            "max_ports": float(routing.max_ports),
            # broadcast
            "broadcast_cost": broadcast.statistics.total_communication_cost,
            "max_delay": broadcast.max_delivery_delay,
            "delay_stretch": broadcast.stretch_vs_optimal,
            "reached": float(broadcast.vertices_reached),
            "echo_cost": broadcast.echo.cost,
            "echo_completion": broadcast.echo.completion_time,
            # routing
            "route_stretch_p50": routing.stretch_p50,
            "route_stretch_p90": routing.stretch_p90,
            "route_stretch_max": routing.max_route_stretch,
            "total_routed_weight": routing.total_routed_weight,
            "table_bytes": float(routing.table_bytes),
            # synchronizer
            "messages_per_pulse": float(synchronizer.messages_per_pulse),
            "communication_per_pulse": synchronizer.communication_per_pulse,
            "pulse_delay": synchronizer.pulse_delay,
            # deterministic operation counts (the regression gate's keys)
            "overlay_broadcast_messages": float(broadcast.statistics.messages_sent),
            "overlay_broadcast_events": float(broadcast.statistics.rounds_processed),
            "overlay_route_settles": float(scheme.build_settles),
            "overlay_sync_settles": float(synchronizer.settles),
        }
        records[name] = record

    return {
        "workload": dict(workload),
        "strategies": records,
        "n": n,
        "demands": len(demands),
        "pulses": pulses,
        "diameter_method": diameter_method,
    }


def merge_run_into_file(path: str | Path, run: dict[str, object]) -> dict[str, object]:
    """Merge ``run`` into the overlay trajectory at ``path`` (created if missing).

    One entry per workload key under ``"runs"``, latest run wins — the same
    contract as the oracle trajectory file.
    """
    path = Path(path)
    if path.exists():
        document = json.loads(path.read_text())
    else:
        document = {
            "schema": SCHEMA_VERSION,
            "description": (
                "Spanner-overlay benchmark trajectory (broadcast / routing / "
                "synchronizer over registry builders); see docs/PERFORMANCE.md. "
                "Regenerate with `repro bench-overlays`."
            ),
            "runs": {},
        }
    document.setdefault("runs", {})[workload_key(run["workload"])] = run
    atomic_write_json(path, document)
    return document


def render_rows(run: dict[str, object]) -> list[dict[str, object]]:
    """Flatten a run record into report-table rows (one per builder)."""
    rows = []
    for name, record in run["strategies"].items():
        row: dict[str, object] = {"builder": name}
        row.update(record)
        rows.append(row)
    return rows
