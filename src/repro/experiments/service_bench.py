"""Service chaos benchmark: the recovery trajectory behind ``repro bench-service``.

The :mod:`repro.service` layer claims to survive the failures a long-lived
deployment actually sees — a SIGKILLed build worker, a bit-flipped cached
artifact, a claim holder that dies without releasing its lease.  This bench
*induces* each of those failures against a real queue + cache rooted in a
temporary directory and records what the recovery machinery did:

* **cold phase** — submit the workload's build job and drain it with a
  supervised worker.  Rows with a ``kill_band`` inject a worker death into
  the band-parallel greedy build (the fork worker SIGKILLs itself mid-band;
  the PR-7 supervisor re-filters the orphaned band inline), so the cold
  build itself is a recovery event, and the spanner is still re-verified
  against the stretch bound before the artifact is committed;
* **corrupt phase** — flip one byte of the committed payload, resubmit the
  identical request, and require the checksum mismatch to quarantine the
  artifact and force a rebuild whose canonical edge list is byte-identical
  to the original (``rebuild_matches``) — a corrupted artifact is never
  served (``never_served_corrupt``);
* **warm phase** — resubmit once more and require a verified cache hit;
  ``warm_serve_ratio`` (serve wall-clock over cold build wall-clock) is the
  number the ``gate_serve_ratio`` rows hold below ``--max-serve-ratio``;
* **reclaim phase** — claim a fourth copy of the job under a throwaway
  worker id with a microscopic lease and walk away; the real worker must
  reclaim the expired lease (``queue.lease_reclaims``) and finish the job.

Every ``service_*`` counter in the record is a deterministic event count —
jobs done, cache hits/misses, quarantines, reclaims, injected worker deaths
— so ``scripts/check_bench_regression.py`` diffs them exactly like the
other five trajectories; wall-clock only enters through the gated serve
ratio, whose bar is generous (two orders of magnitude) precisely so CI
noise cannot trip it.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro.graph.io import atomic_write_json
from repro.experiments.overlay_bench import (
    workload_key as _overlay_workload_key,
)
from repro.experiments.build_bench import (
    workload_key as _build_workload_key,
)

SCHEMA_VERSION = 1

#: Deterministic recovery/event counters the regression checker compares
#: (``service_``-prefixed so they can never collide with another
#: trajectory's keys inside the shared checker).
OPERATION_COUNT_KEYS = (
    "service_jobs_done",
    "service_jobs_failed",
    "service_cache_hits",
    "service_cache_misses",
    "service_cache_puts",
    "service_corrupt_quarantined",
    "service_corrupt_rebuilds",
    "service_lease_reclaims",
    "service_poison_quarantined",
    "service_worker_deaths",
    "service_spanner_edges",
)

#: Workload keys that describe the chaos regime rather than the instance.
_SERVICE_KEYS = ("kill_band", "build_workers", "gate_serve_ratio")


def service_workload(
    base: dict[str, object],
    *,
    kill_band: Optional[int] = None,
    build_workers: int = 2,
    gate_serve_ratio: bool = False,
) -> dict[str, object]:
    """Attach a chaos regime to a bench workload description.

    ``kill_band`` injects a SIGKILL into that band of the parallel greedy
    build (``None`` = no injection); ``gate_serve_ratio`` marks rows whose
    committed ``warm_serve_ratio`` the regression checker holds below
    ``--max-serve-ratio``.
    """
    workload = dict(base)
    if kill_band is not None:
        workload["kill_band"] = int(kill_band)
    workload["build_workers"] = int(build_workers)
    if gate_serve_ratio:
        workload["gate_serve_ratio"] = True
    return workload


def _without_service(workload: dict[str, object]) -> dict[str, object]:
    return {key: value for key, value in workload.items() if key not in _SERVICE_KEYS}


def workload_key(workload: dict[str, object]) -> str:
    """Stable run key: the base workload key plus the chaos-regime suffix."""
    base = _without_service(workload)
    if base.get("kind") == "bucketed-geometric":
        base_key = _build_workload_key(base)
    else:
        base_key = _overlay_workload_key(base)
    suffix = "k{}-w{}".format(
        workload.get("kill_band", "none"), int(workload.get("build_workers", 2))
    )
    return f"{base_key}-{suffix}"


def _build_presets() -> dict[str, dict[str, object]]:
    """The named rows of the service matrix.

    The CI row is small and injects a worker death into band 1 of the cold
    build (the full chaos sequence on every run); the scale row is the
    gated serving-latency evidence — same ``n = 10⁴`` geometric instance as
    the fault trajectory's acceptance row, where a warm hit must serve in
    under 1% of the cold build.
    """
    from repro.experiments.overlay_bench import geometric_workload

    rows = (
        service_workload(
            geometric_workload(n=300, radius=0.12, seed=7, stretch=1.5),
            kill_band=1,
            build_workers=2,
        ),
        service_workload(
            geometric_workload(n=10000, radius=0.025, seed=7, stretch=1.2),
            kill_band=1,
            build_workers=2,
            gate_serve_ratio=True,
        ),
    )
    return {workload_key(workload): workload for workload in rows}


#: workload key -> workload (the chaos regime is part of the workload).
SERVICE_PRESETS = _build_presets()


def run_service_bench(
    workload: dict[str, object],
    *,
    root: Optional[Path] = None,
    budget_seconds: Optional[float] = None,
) -> dict[str, object]:
    """Run the four chaos phases against a real service root.

    ``root`` defaults to a throwaway temporary directory (removed
    afterwards); pass a path to keep the queue/cache state for inspection.
    The record mirrors the other bench shapes (``"strategies"`` keyed by
    the single ``"service"`` row) so
    :func:`scripts.check_bench_regression.find_regressions` gates all six
    trajectories with the same code.
    """
    import repro.core.parallel_greedy as parallel_greedy_module
    from repro.service.cache import ArtifactCache, artifact_key
    from repro.service.queue import JobQueue
    from repro.service.workers import ServiceWorker

    keep_root = root is not None
    root = Path(root) if root is not None else Path(tempfile.mkdtemp(prefix="svc-bench-"))
    kill_band = workload.get("kill_band")
    spec: dict[str, object] = {
        "workload": _without_service(workload),
        "stretch": float(workload["stretch"]),
        "chain": ["greedy-parallel", "approx-greedy", "theta", "yao", "mst"],
        "params": {
            "greedy-parallel": {
                "workers": int(workload.get("build_workers", 2)),
            }
        },
    }
    if budget_seconds is not None:
        spec["budget_seconds"] = float(budget_seconds)
    key = artifact_key(
        spec["workload"], spec["chain"], spec["stretch"], spec["params"]
    )

    queue = JobQueue(root)
    cache = ArtifactCache(root / "cache")
    worker = ServiceWorker(queue, cache, "bench-worker")
    saved_kill = parallel_greedy_module._KILL_AT_BAND
    try:
        # Phase 1 — cold build, with the injected worker death if requested.
        if kill_band is not None:
            parallel_greedy_module._KILL_AT_BAND = int(kill_band)
        try:
            cold_job = queue.submit(spec)
            start = time.perf_counter()
            worker.run(max_jobs=1)
            cold_seconds = time.perf_counter() - start
        finally:
            parallel_greedy_module._KILL_AT_BAND = saved_kill
        cold_job = queue.get(cold_job.job_id)
        cold_result = cold_job.result or {}
        original = json.loads(cache.payload_path(key).read_text(encoding="utf-8"))
        worker_deaths = float(original.get("metadata", {}).get("build_worker_deaths", 0.0))

        # Phase 2 — flip one payload byte, resubmit, require quarantine +
        # byte-identical rebuild.
        payload_path = cache.payload_path(key)
        data = bytearray(payload_path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        payload_path.write_bytes(bytes(data))
        corrupt_job = queue.submit(spec)
        worker.run(max_jobs=1)
        corrupt_job = queue.get(corrupt_job.job_id)
        corrupt_result = corrupt_job.result or {}
        rebuilt = json.loads(cache.payload_path(key).read_text(encoding="utf-8"))
        rebuild_matches = rebuilt.get("edges") == original.get("edges")
        never_served_corrupt = (
            corrupt_job.state == "done"
            and not corrupt_result.get("cache_hit", True)
            and corrupt_result.get("rebuilt_after_corruption", False)
            and cache.counters["corrupt_quarantined"] >= 1
        )

        # Phase 3 — warm resubmit must be a verified cache hit.
        warm_job = queue.submit(spec)
        start = time.perf_counter()
        worker.run(max_jobs=1)
        warm_seconds = time.perf_counter() - start
        warm_job = queue.get(warm_job.job_id)
        warm_result = warm_job.result or {}
        warm_hit = warm_job.state == "done" and bool(warm_result.get("cache_hit"))

        # Phase 4 — a throwaway worker claims with a microscopic lease and
        # disappears; the real worker must reclaim and finish the job.
        reclaim_job = queue.submit(spec, lease_seconds=1e-9)
        queue.claim("dead-worker")
        worker.run(max_jobs=1)
        reclaim_job = queue.get(reclaim_job.job_id)
        reclaim_completed = (
            reclaim_job.state == "done" and queue.counters["lease_reclaims"] >= 1
        )
    finally:
        if not keep_root:
            shutil.rmtree(root, ignore_errors=True)

    record: dict[str, float] = {
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "service_jobs_done": float(worker.counters["jobs_done"]),
        "service_jobs_failed": float(worker.counters["jobs_failed"]),
        "service_cache_hits": float(cache.counters["hits"]),
        "service_cache_misses": float(cache.counters["misses"]),
        "service_cache_puts": float(cache.counters["puts"]),
        "service_corrupt_quarantined": float(cache.counters["corrupt_quarantined"]),
        "service_corrupt_rebuilds": float(worker.counters["corrupt_rebuilds"]),
        "service_lease_reclaims": float(queue.counters["lease_reclaims"]),
        "service_poison_quarantined": float(queue.counters["quarantined"]),
        "service_worker_deaths": worker_deaths,
        "service_spanner_edges": float(cold_result.get("spanner_edges", 0)),
    }
    result: dict[str, object] = {
        "workload": dict(workload),
        "strategies": {"service": record},
        "tier": cold_result.get("tier"),
        "degraded": bool(cold_result.get("degraded", False)),
        "warm_serve_ratio": warm_seconds / cold_seconds if cold_seconds > 0 else 0.0,
        "service_verified": cold_result.get("verified") is True,
        "rebuild_matches": bool(rebuild_matches),
        "never_served_corrupt": bool(never_served_corrupt),
        "warm_cache_hit": bool(warm_hit),
        "reclaim_completed": bool(reclaim_completed),
    }
    if kill_band is not None:
        result["chaos_recovered"] = worker_deaths >= 1.0
    if workload.get("gate_serve_ratio"):
        result["gate_serve_ratio"] = True
    return result


def run_flags(run: dict[str, object]) -> dict[str, bool]:
    """The pass/fail flags of one run (the gate and the CLI both read these)."""
    flags = {
        "service_verified": bool(run.get("service_verified", False)),
        "rebuild_matches": bool(run.get("rebuild_matches", False)),
        "never_served_corrupt": bool(run.get("never_served_corrupt", False)),
        "warm_cache_hit": bool(run.get("warm_cache_hit", False)),
        "reclaim_completed": bool(run.get("reclaim_completed", False)),
    }
    if "chaos_recovered" in run:
        flags["chaos_recovered"] = bool(run["chaos_recovered"])
    return flags


def merge_run_into_file(path: str | Path, run: dict[str, object]) -> dict[str, object]:
    """Merge ``run`` into the service trajectory at ``path`` (created if missing).

    One entry per workload key under ``"runs"``, latest run wins — the same
    contract as the other five trajectory files.
    """
    path = Path(path)
    if path.exists():
        document = json.loads(path.read_text())
    else:
        document = {
            "schema": SCHEMA_VERSION,
            "description": (
                "Service chaos benchmark trajectory (injected worker death, "
                "artifact bit-flip quarantine + byte-identical rebuild, warm "
                "cache serving, lease-expiry reclaim); see docs/SERVICE.md. "
                "Regenerate with `repro bench-service`."
            ),
            "runs": {},
        }
    document.setdefault("runs", {})[workload_key(run["workload"])] = run
    atomic_write_json(path, document)
    return document


def render_rows(run: dict[str, object]) -> list[dict[str, object]]:
    """Flatten a run record into report-table rows (one per strategy)."""
    rows = []
    for name, record in run["strategies"].items():
        row: dict[str, object] = {"phase_set": name}
        row.update(record)
        rows.append(row)
    return rows
