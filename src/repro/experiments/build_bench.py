"""Construction benchmark matrix: the perf trajectory behind ``repro bench-build``.

PRs 1–5 put verification, overlays and oracles on indexed, sharded fast
paths; construction itself — the greedy loop of Algorithm 1 — remained the
last pure-python bottleneck.  This bench measures end-to-end greedy
construction per *strategy* on one shared workload instance:

* ``greedy-edge-list`` — the per-edge bounded-ball list path: one cutoff
  Dijkstra ball per examined edge, no amortization.  This is the hot loop
  the CSR band filter replaces, and the denominator of the gated
  ``build_speedup``.
* ``greedy-serial`` — the repo's default serial path (cached oracle), the
  strongest sequential baseline; its ratio is reported as
  ``cached_speedup`` so the trajectory stays honest about how much of the
  win is amortization (shared with the oracle) versus banding.
* ``csr-parallel-w1`` — :func:`repro.core.parallel_greedy.parallel_greedy_spanner`
  with one worker: the CSR band filter + canonical replay, inline.
* ``csr-parallel-wn`` — the same path fanned across worker processes with
  shared-memory CSR snapshots.  ``workers_speedup`` (w1 / wn wall-clock)
  and ``cpu_count`` are recorded verbatim: on a single-core host the ratio
  honestly hovers near 1.

Every strategy must produce the *byte-identical* greedy edge set — the
``builds_match`` cross-check flag that ``scripts/check_bench_regression.py``
fails on — and the deterministic ``build_*`` counters are diffed against the
committed baseline in ``benchmarks/BENCH_build.json`` exactly like the
oracle/overlay/verify trajectories.  Rows marked ``gate_build_speedup``
additionally enforce ``--min-build-speedup`` (default 3×) on
``build_speedup``.

The scale rows use :func:`repro.graph.generators.bucketed_geometric_graph`
(the O(n + m) spatial-hash generator): at ``n = 10⁵`` the quadratic
all-pairs generator would dwarf construction itself.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.graph.io import atomic_write_json
from repro.core.greedy import greedy_spanner, greedy_spanner_of_metric
from repro.core.parallel_greedy import (
    parallel_greedy_spanner,
    parallel_greedy_spanner_of_metric,
)
from repro.core.spanner import Spanner
from repro.graph.weighted_graph import WeightedGraph
from repro.metric.base import FiniteMetric

SCHEMA_VERSION = 1

#: Strategy order is execution order; later derived ratios assume it.
DEFAULT_STRATEGIES = (
    "greedy-edge-list",
    "greedy-serial",
    "csr-parallel-w1",
    "csr-parallel-wn",
)

#: Worker count of the ``csr-parallel-wn`` strategy when ``--workers`` is
#: not given.
DEFAULT_FAN_WORKERS = 4

#: The deterministic operation counts the regression checker compares.
OPERATION_COUNT_KEYS = (
    "build_filter_settles",
    "build_replay_settles",
    "build_candidate_edges",
)


def bucketed_workload(
    n: int = 20000, degree: float = 96.0, seed: int = 3, stretch: float = 2.0
) -> dict[str, object]:
    """A bucketed geometric workload pinned by *average degree*, not radius.

    The radius that yields the expected degree follows from the unit-square
    point density: ``π·r²·n = degree``.
    """
    return {
        "kind": "bucketed-geometric",
        "n": int(n),
        "degree": float(degree),
        "seed": int(seed),
        "stretch": float(stretch),
    }


def euclidean_build_workload(
    n: int = 400, dim: int = 2, seed: int = 7, stretch: float = 2.0
) -> dict[str, object]:
    """A uniform-Euclidean metric workload (streamed complete graph)."""
    return {
        "kind": "uniform-euclidean",
        "n": int(n),
        "dim": int(dim),
        "seed": int(seed),
        "stretch": float(stretch),
    }


def workload_key(workload: dict[str, object]) -> str:
    """Stable run key joining baseline and fresh runs of one workload."""
    if workload["kind"] == "bucketed-geometric":
        return "bucketed-n{}-d{}-seed{}-t{}".format(
            int(workload["n"]), float(workload["degree"]), int(workload["seed"]),
            float(workload["stretch"]),
        )
    from repro.experiments.oracle_bench import workload_key as _oracle_workload_key

    return _oracle_workload_key(workload)


def _build_instance(
    workload: dict[str, object],
) -> tuple[Optional[WeightedGraph], Optional[FiniteMetric]]:
    """Instantiate a workload as ``(graph, metric)`` (exactly one non-None)."""
    if workload["kind"] == "bucketed-geometric":
        from repro.graph.generators import bucketed_geometric_graph

        n = int(workload["n"])
        radius = math.sqrt(float(workload["degree"]) / (math.pi * max(1, n)))
        return bucketed_geometric_graph(n, radius, seed=int(workload["seed"])), None
    from repro.experiments.oracle_bench import _build_instance as _oracle_instance

    _, metric = _oracle_instance(workload)
    return None, metric


def _build_presets() -> dict[str, tuple[dict[str, object], tuple[str, ...], bool]]:
    """The named rows of the construction matrix.

    Each value is ``(workload, strategies, gate_build_speedup)``.  The first
    two rows are CI-sized; the ``n = 2·10⁴`` row is the tuning row of
    docs/PERFORMANCE.md; the ``n = 10⁵`` row is the committed scale evidence
    and the only row whose ``build_speedup`` the regression gate enforces
    (the per-edge baseline alone costs minutes there — regenerate offline,
    not in CI).
    """
    rows: tuple[tuple[dict[str, object], tuple[str, ...], bool], ...] = (
        (bucketed_workload(n=300, degree=16.0), DEFAULT_STRATEGIES, False),
        # The metric row streams the complete graph; the per-edge baseline
        # pays Θ(n²) balls, so it stays CI-sized.
        (euclidean_build_workload(n=150, stretch=1.5), DEFAULT_STRATEGIES, False),
        (bucketed_workload(n=20000, degree=96.0), DEFAULT_STRATEGIES, False),
        (bucketed_workload(n=100000, degree=96.0), DEFAULT_STRATEGIES, True),
        # The stretch row toward n = 10⁶: per-edge and fan-out baselines are
        # dropped (the edge-list path alone would cost the better part of an
        # hour) so the row stays regenerable inside one offline bench budget;
        # builds_match still cross-checks the CSR path against the serial
        # builder edge-for-edge.
        (
            bucketed_workload(n=500000, degree=16.0),
            ("greedy-serial", "csr-parallel-w1"),
            False,
        ),
    )
    return {workload_key(w): (w, strategies, gated) for w, strategies, gated in rows}


#: workload key -> (workload, default strategies, gate_build_speedup).
BUILD_PRESETS = _build_presets()


def _canonical_edges(spanner: Spanner) -> list[tuple[object, object, float]]:
    """The spanner's edge set in a canonical, exactly-comparable form."""
    edges = []
    for u, v, weight in spanner.subgraph.edges():
        a, b = (u, v) if repr(u) <= repr(v) else (v, u)
        edges.append((repr(a), repr(b), float(weight)))
    edges.sort()
    return edges


def _run_strategy(
    name: str,
    graph: Optional[WeightedGraph],
    metric: Optional[FiniteMetric],
    stretch: float,
    fan_workers: int,
) -> Spanner:
    if name == "greedy-edge-list":
        if metric is not None:
            return greedy_spanner_of_metric(metric, stretch, oracle="bounded")
        return greedy_spanner(graph, stretch, oracle="bounded")
    if name == "greedy-serial":
        if metric is not None:
            return greedy_spanner_of_metric(metric, stretch)
        return greedy_spanner(graph, stretch)
    if name == "csr-parallel-w1":
        if metric is not None:
            return parallel_greedy_spanner_of_metric(metric, stretch, workers=1)
        return parallel_greedy_spanner(graph, stretch, workers=1)
    if name == "csr-parallel-wn":
        if metric is not None:
            return parallel_greedy_spanner_of_metric(metric, stretch, workers=fan_workers)
        return parallel_greedy_spanner(graph, stretch, workers=fan_workers)
    raise ValueError(f"unknown build strategy {name!r}")


def run_build_bench(
    workload: dict[str, object],
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    *,
    workers: Optional[int] = None,
    gate_build_speedup: bool = False,
) -> dict[str, object]:
    """Build the greedy spanner once per strategy; returns one run record.

    The record mirrors the oracle/overlay/verify bench shape (``"strategies"``
    keyed by name) so :func:`scripts.check_bench_regression.find_regressions`
    gates all four trajectories with the same code.  The workload instance is
    generated once and shared; every strategy's edge set is compared exactly
    (``builds_match``).
    """
    from repro.experiments.harness import resolve_worker_count

    graph, metric = _build_instance(workload)
    stretch = float(workload["stretch"])
    fan_workers = resolve_worker_count(int(workers)) if workers else DEFAULT_FAN_WORKERS

    records: dict[str, dict[str, float]] = {}
    edge_sets: dict[str, list] = {}
    for name in strategies:
        start = time.perf_counter()
        spanner = _run_strategy(name, graph, metric, stretch, fan_workers)
        seconds = time.perf_counter() - start
        record: dict[str, float] = {"build_seconds": seconds}
        record.update(
            {k: float(v) for k, v in spanner.metadata.items() if isinstance(v, (int, float))}
        )
        record["spanner_edges"] = float(spanner.number_of_edges)
        records[name] = record
        edge_sets[name] = _canonical_edges(spanner)

    result: dict[str, object] = {
        "workload": dict(workload),
        "strategies": records,
        "n": graph.number_of_vertices if graph is not None else int(workload["n"]),
        "edges": float(graph.number_of_edges) if graph is not None else float(
            int(workload["n"]) * (int(workload["n"]) - 1) // 2
        ),
        "cpu_count": float(os.cpu_count() or 1),
        "fan_workers": float(fan_workers),
    }
    if len(edge_sets) > 1:
        reference = next(iter(edge_sets.values()))
        # Exact comparison is intentional: the parallel builder's replay
        # discipline guarantees byte-identical edge sets, not just equal
        # weights up to rounding.
        result["builds_match"] = all(edges == reference for edges in edge_sets.values())
    if "greedy-edge-list" in records and "csr-parallel-w1" in records:
        csr_seconds = records["csr-parallel-w1"]["build_seconds"]
        if csr_seconds > 0:
            result["build_speedup"] = (
                records["greedy-edge-list"]["build_seconds"] / csr_seconds
            )
    if "greedy-serial" in records and "csr-parallel-w1" in records:
        csr_seconds = records["csr-parallel-w1"]["build_seconds"]
        if csr_seconds > 0:
            result["cached_speedup"] = (
                records["greedy-serial"]["build_seconds"] / csr_seconds
            )
    if "csr-parallel-w1" in records and "csr-parallel-wn" in records:
        wn_seconds = records["csr-parallel-wn"]["build_seconds"]
        if wn_seconds > 0:
            result["workers_speedup"] = (
                records["csr-parallel-w1"]["build_seconds"] / wn_seconds
            )
    if gate_build_speedup:
        result["gate_build_speedup"] = True
    return result


def merge_run_into_file(path: str | Path, run: dict[str, object]) -> dict[str, object]:
    """Merge ``run`` into the build trajectory at ``path`` (created if missing).

    One entry per workload key under ``"runs"``, latest run wins — the same
    contract as the oracle, overlay and verify trajectory files.
    """
    path = Path(path)
    if path.exists():
        document = json.loads(path.read_text())
    else:
        document = {
            "schema": SCHEMA_VERSION,
            "description": (
                "Greedy construction benchmark trajectory (per-strategy build "
                "wall-clock + deterministic band/filter counters); see "
                "docs/PERFORMANCE.md. Regenerate with `repro bench-build`."
            ),
            "runs": {},
        }
    document.setdefault("runs", {})[workload_key(run["workload"])] = run
    atomic_write_json(path, document)
    return document


def render_rows(run: dict[str, object]) -> list[dict[str, object]]:
    """Flatten a run record into report-table rows (one per strategy)."""
    rows = []
    for name, record in run["strategies"].items():
        row: dict[str, object] = {"strategy": name}
        row.update(record)
        rows.append(row)
    return rows
