"""Verification benchmark matrix: the perf trajectory behind ``repro bench-verify``.

PRs 1–4 put *construction* on the indexed fast path; this bench measures the
*quality checks* — exact edge verification and the exact stretch profile —
end to end on the batch verification engine of
:mod:`repro.spanners.verification`, against the seed per-pair reference
implementation where the instance is small enough to afford it.

One run takes a workload, builds one spanner with a registry builder
(:mod:`repro.spanners.registry`), and runs the checkers once per *mode*:

* ``indexed`` — the batch engine: one cutoff-bounded search per distinct
  edge source, one full indexed SSSP per profile source, vectorized ratio
  reduction, optionally sharded across worker processes (``--workers``);
* ``reference`` — the seed per-pair dict Dijkstra loops.

Each mode's record holds wall-clock seconds plus the deterministic
``verify_settles`` / ``profile_settles`` operation counts that
``scripts/check_bench_regression.py`` diffs against the committed baseline
in ``benchmarks/BENCH_verify.json`` (machine-independent, noise-free).  When
both modes run, the run also records the cross-check flags the gate fails
on: ``verdicts_match`` (edge + sampled verdicts agree) and
``profiles_match`` (*bit-identical* profile floats).

Large rows (``n = 10⁴``) run the indexed mode only: edge verification stays
exact over every base edge, while the profile sweeps a deterministic
evenly-strided source shard (``profile_sources``, recorded in the run) — the
same scale device as the overlay bench's restricted routing destinations.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.graph.io import atomic_write_json
from repro.core.spanner import Spanner
from repro.experiments.overlay_bench import (
    DEFAULT_BUILDER_PARAMS,
    _build_instance as _build_overlay_instance,
    workload_key as _overlay_workload_key,
)
from repro.graph.weighted_graph import WeightedGraph
from repro.metric.base import FiniteMetric
from repro.spanners.registry import build_spanner
from repro.spanners.verification import (
    VerificationEngine,
    stretch_profile_detailed,
    verify_spanner_edges_detailed,
    verify_spanner_sampled,
)

SCHEMA_VERSION = 1

DEFAULT_MODES = ("indexed", "reference")

#: The deterministic operation counts the regression checker compares.
OPERATION_COUNT_KEYS = ("verify_settles", "profile_settles")


def verify_workload(
    base: dict[str, object], builder: str = "greedy"
) -> dict[str, object]:
    """Attach the registry ``builder`` to a bench workload description."""
    workload = dict(base)
    workload["builder"] = str(builder)
    return workload


def _without_builder(workload: dict[str, object]) -> dict[str, object]:
    return {key: value for key, value in workload.items() if key != "builder"}


def workload_key(workload: dict[str, object]) -> str:
    """Stable run key: the overlay workload key plus the builder suffix.

    Delegating to :func:`repro.experiments.overlay_bench.workload_key` keeps
    the key format in one place — a silent divergence would make the
    regression checker join fresh runs against nothing.
    """
    return f"{_overlay_workload_key(_without_builder(workload))}-b{workload['builder']}"


def _build_instance(
    workload: dict[str, object],
) -> tuple[WeightedGraph, Optional[FiniteMetric]]:
    return _build_overlay_instance(_without_builder(workload))


def _build_presets() -> dict[str, tuple[dict[str, object], tuple[str, ...], Optional[int]]]:
    """The named rows of the verification matrix.

    Each value is ``(workload, modes, profile_sources)``.  The first two rows
    are CI-sized and run both modes (the cross-check evidence); the scale
    rows run the indexed mode only — the reference mode's Θ(per-pair) cost is
    exactly the wall this engine removes — with the profile over an
    evenly-strided source shard.
    """
    from repro.experiments.oracle_bench import euclidean_workload
    from repro.experiments.overlay_bench import geometric_workload

    rows: tuple[tuple[dict[str, object], tuple[str, ...], Optional[int]], ...] = (
        (verify_workload(geometric_workload(n=300), "greedy"), DEFAULT_MODES, None),
        # The metric reference mode pays Θ(n²) per-pair Dijkstras over the
        # closure (the wall this engine removes), so the dual-mode metric
        # cross-check row is CI-sized; the larger metric rows run indexed
        # only.
        (verify_workload(euclidean_workload(n=150, stretch=1.5), "theta"), DEFAULT_MODES, None),
        (verify_workload(euclidean_workload(n=2000, stretch=1.5), "theta"), ("indexed",), 256),
        # Baswana–Sen's pinned k=2 yields a 3-spanner, so the scale row
        # verifies against t=3 (the guarantee it actually makes).
        (
            verify_workload(
                geometric_workload(n=10000, radius=0.025, stretch=3.0), "baswana-sen"
            ),
            ("indexed",),
            64,
        ),
    )
    return {workload_key(workload): (workload, modes, sources) for workload, modes, sources in rows}


#: workload key -> (workload, default modes, default profile_sources).
VERIFY_PRESETS = _build_presets()


def profile_source_vertices(
    base: WeightedGraph, profile_sources: Optional[int]
) -> Optional[list[object]]:
    """Return the deterministic evenly-strided source shard, or ``None`` for all.

    Sources are taken at a fixed stride over the shared-id order (the
    ``base.vertices()`` order), so the shard — and therefore every profile
    float and counter derived from it — is a pure function of the workload.
    """
    if profile_sources is None:
        return None
    vertices = list(base.vertices())
    count = min(int(profile_sources), len(vertices))
    if count <= 0:
        return []
    stride = max(1, len(vertices) // count)
    return vertices[::stride][:count]


def run_verify_bench(
    workload: dict[str, object],
    modes: Sequence[str] = DEFAULT_MODES,
    *,
    workers: Optional[int] = None,
    profile_sources: Optional[int] = None,
    samples: int = 128,
) -> dict[str, object]:
    """Run edge verification + exact profile once per mode; returns one run record.

    The record mirrors the oracle/overlay bench shape (``"strategies"`` keyed
    by mode) so :func:`scripts.check_bench_regression.find_regressions` gates
    all three trajectories with the same code.  The spanner is built once and
    shared by all modes; the indexed mode also reuses one
    :class:`VerificationEngine` across its checks, which is the engine's
    intended amortization (translate once, verify many).
    """
    graph, metric = _build_instance(workload)
    stretch = float(workload["stretch"])
    builder = str(workload.get("builder", "greedy"))
    params = dict(DEFAULT_BUILDER_PARAMS.get(builder, {}))

    build_start = time.perf_counter()
    spanner: Spanner = build_spanner(
        builder, metric if metric is not None else graph, stretch, **params
    )
    build_seconds = time.perf_counter() - build_start

    sources = profile_source_vertices(spanner.base, profile_sources)

    records: dict[str, dict[str, float]] = {}
    verdicts: dict[str, tuple[bool, bool]] = {}
    profiles: dict[str, tuple[float, ...]] = {}
    for mode in modes:
        engine = (
            VerificationEngine(spanner.base, spanner.subgraph) if mode == "indexed" else None
        )
        mode_workers = workers if mode == "indexed" else None

        start = time.perf_counter()
        verification = verify_spanner_edges_detailed(
            spanner.subgraph, spanner.base, stretch, mode=mode,
            workers=mode_workers, engine=engine,
        )
        verify_seconds = time.perf_counter() - start

        start = time.perf_counter()
        profile, profile_stats = stretch_profile_detailed(
            spanner, exact=True, mode=mode, workers=mode_workers,
            sources=sources, engine=engine,
        )
        profile_seconds = time.perf_counter() - start

        start = time.perf_counter()
        sampled_ok = verify_spanner_sampled(
            spanner, samples=samples, seed=int(workload.get("seed", 7)),
            mode=mode, engine=engine,
        )
        sampled_seconds = time.perf_counter() - start

        record: dict[str, float] = {
            "verify_seconds": verify_seconds,
            "profile_seconds": profile_seconds,
            "sampled_seconds": sampled_seconds,
            "verify_ok": float(verification.ok),
            "sampled_ok": float(sampled_ok),
        }
        record.update(verification.counters())
        record.update(profile_stats.counters())
        record.update(profile.as_row())
        records[mode] = record
        verdicts[mode] = (verification.ok, sampled_ok)
        profiles[mode] = (
            float(profile.pairs_checked),
            profile.max_stretch,
            profile.mean_stretch,
            profile.fraction_at_stretch_one,
        )

    result: dict[str, object] = {
        "workload": dict(workload),
        "strategies": records,
        "n": graph.number_of_vertices,
        "build_seconds": build_seconds,
        "spanner_edges": float(spanner.number_of_edges),
        "workers": float(workers) if workers is not None else 1.0,
        "profile_source_count": float(len(sources)) if sources is not None else float(
            graph.number_of_vertices
        ),
    }
    if len(records) > 1:
        reference_verdict = next(iter(verdicts.values()))
        reference_profile = next(iter(profiles.values()))
        # Bit-identical float comparison is intentional: the two engines are
        # proven (and property-tested) to produce the same IEEE doubles.
        result["verdicts_match"] = all(v == reference_verdict for v in verdicts.values())
        result["profiles_match"] = all(p == reference_profile for p in profiles.values())
    if "indexed" in records and "reference" in records:
        reference_total = (
            records["reference"]["verify_seconds"] + records["reference"]["profile_seconds"]
        )
        indexed_total = (
            records["indexed"]["verify_seconds"] + records["indexed"]["profile_seconds"]
        )
        if indexed_total > 0:
            result["speedup_vs_reference"] = reference_total / indexed_total
    return result


def merge_run_into_file(path: str | Path, run: dict[str, object]) -> dict[str, object]:
    """Merge ``run`` into the verification trajectory at ``path`` (created if missing).

    One entry per workload key under ``"runs"``, latest run wins — the same
    contract as the oracle and overlay trajectory files.
    """
    path = Path(path)
    if path.exists():
        document = json.loads(path.read_text())
    else:
        document = {
            "schema": SCHEMA_VERSION,
            "description": (
                "Batch verification benchmark trajectory (exact edge checks / "
                "stretch profiles per engine mode); see docs/PERFORMANCE.md. "
                "Regenerate with `repro bench-verify`."
            ),
            "runs": {},
        }
    document.setdefault("runs", {})[workload_key(run["workload"])] = run
    atomic_write_json(path, document)
    return document


def render_rows(run: dict[str, object]) -> list[dict[str, object]]:
    """Flatten a run record into report-table rows (one per mode)."""
    rows = []
    for name, record in run["strategies"].items():
        row: dict[str, object] = {"mode": name}
        row.update(record)
        rows.append(row)
    return rows
