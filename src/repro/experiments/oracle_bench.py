"""Oracle benchmark matrix: the perf trajectory behind ``repro bench-oracles``.

Runs the greedy spanner over one workload once per distance-oracle strategy
(:mod:`repro.core.distance_oracle`), recording wall-clock time, the
deterministic operation counts (``dijkstra_settles`` / ``distance_queries``)
and the tracemalloc peak-memory high-water mark of each construction, and
cross-checks that every strategy produced the *identical* spanner edge
set — the strategies are interchangeable by construction, so a mismatch is a
bug, not a measurement.  Euclidean workloads are built as lazy
:class:`~repro.metric.closure.MetricClosure` views, so the bench scales to
``n`` in the thousands without materializing the Θ(n²) complete graph.

Results are merged into a ``BENCH_oracles.json`` file keyed by workload
signature, so repeated runs at different sizes accumulate a perf trajectory
that ``scripts/check_bench_regression.py`` can diff against the committed
baseline in ``benchmarks/BENCH_oracles.json``.  The file format and how to
read it are documented in ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.core.greedy import greedy_spanner
from repro.experiments.harness import traced_peak_memory
from repro.graph.generators import random_connected_graph
from repro.graph.weighted_graph import WeightedGraph
from repro.metric.closure import MetricClosure
from repro.metric.generators import uniform_points

SCHEMA_VERSION = 1

DEFAULT_STRATEGIES = ("bounded", "bidirectional", "cached")

#: Metadata counters copied verbatim into each strategy record when present.
_COUNTER_KEYS = (
    "distance_queries",
    "dijkstra_settles",
    "edges_added",
    "cache_hits",
    "cache_misses",
    "cached_bounds",
    "peak_cached_bounds",
)

#: The deterministic operation counts the regression checker compares.
OPERATION_COUNT_KEYS = ("dijkstra_settles", "distance_queries")


def workload_key(workload: dict[str, object]) -> str:
    """Return the stable run key of a workload description, e.g.
    ``"uniform-euclidean-n400-d2-seed7-t2.0"``.

    Numeric fields are normalised (ints as ints, stretch/p as floats) so that
    e.g. ``stretch=2`` and ``stretch=2.0`` map to the same key — the key is
    what the regression checker joins baseline and fresh runs on.
    """
    if workload["kind"] == "uniform-euclidean":
        return "uniform-euclidean-n{}-d{}-seed{}-t{}".format(
            int(workload["n"]), int(workload["dim"]), int(workload["seed"]),
            float(workload["stretch"]),
        )
    return "erdos-renyi-n{}-p{}-seed{}-t{}".format(
        int(workload["n"]), float(workload["p"]), int(workload["seed"]),
        float(workload["stretch"]),
    )


def _build_graph(workload: dict[str, object]) -> WeightedGraph:
    if workload["kind"] == "uniform-euclidean":
        metric = uniform_points(int(workload["n"]), int(workload["dim"]), seed=int(workload["seed"]))
        # Lazy complete-graph view: the greedy runs stream the sorted pairs,
        # so the bench scales to n in the thousands without Θ(n²) memory.
        return MetricClosure(metric)
    return random_connected_graph(int(workload["n"]), float(workload["p"]), seed=int(workload["seed"]))


def euclidean_workload(n: int = 400, dim: int = 2, seed: int = 7, stretch: float = 2.0) -> dict[str, object]:
    """The default bench workload: ``n`` uniform points in the unit ``dim``-cube."""
    return {
        "kind": "uniform-euclidean",
        "n": int(n),
        "dim": int(dim),
        "seed": int(seed),
        "stretch": float(stretch),
    }


def graph_workload(n: int = 200, p: float = 0.1, seed: int = 7, stretch: float = 2.0) -> dict[str, object]:
    """An Erdős–Rényi bench workload (the Section 3 general-graph setting)."""
    return {
        "kind": "erdos-renyi",
        "n": int(n),
        "p": float(p),
        "seed": int(seed),
        "stretch": float(stretch),
    }


def run_oracle_matrix(
    workload: dict[str, object],
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    *,
    measure_memory: bool = True,
) -> dict[str, object]:
    """Run the greedy spanner once per strategy over ``workload``.

    Returns one run record: per-strategy seconds, operation counts and (with
    ``measure_memory``, the default) the tracemalloc peak-memory high-water
    mark of the construction, the wall-clock speedup and settle reduction
    relative to the ``"bounded"`` baseline strategy (when benched), and the
    edge-set cross-check verdict.  Memory tracing roughly doubles the
    wall-clock numbers; they remain comparable within one run.
    """
    graph = _build_graph(workload)
    stretch = float(workload["stretch"])

    records: dict[str, dict[str, float]] = {}
    reference: Optional[WeightedGraph] = None
    identical = True
    for name in strategies:
        start = time.perf_counter()
        if measure_memory:
            with traced_peak_memory() as read_peak:
                spanner = greedy_spanner(graph, stretch, oracle=name)
            peak: Optional[int] = read_peak()
        else:
            spanner = greedy_spanner(graph, stretch, oracle=name)
            peak = None
        seconds = time.perf_counter() - start
        record: dict[str, float] = {"seconds": seconds}
        for key in _COUNTER_KEYS:
            if key in spanner.metadata:
                record[key] = spanner.metadata[key]
        record["spanner_edges"] = float(spanner.number_of_edges)
        if peak is not None:
            record["peak_memory_bytes"] = float(peak)
        records[name] = record
        if reference is None:
            reference = spanner.subgraph
        elif not spanner.subgraph.same_edges(reference):
            identical = False

    result: dict[str, object] = {
        "workload": dict(workload),
        "strategies": records,
        "identical_edge_sets": identical,
        # Tracing costs several-fold wall clock, so rows measured with and
        # without it are not time-comparable; the flag keeps the trajectory
        # honest when runs with different settings are merged.
        "memory_traced": bool(measure_memory),
    }
    if "bounded" in records:
        base = records["bounded"]
        result["speedup_vs_bounded"] = {
            name: base["seconds"] / rec["seconds"]
            for name, rec in records.items()
            if name != "bounded" and rec["seconds"] > 0
        }
        result["settle_reduction_vs_bounded"] = {
            name: base["dijkstra_settles"] / rec["dijkstra_settles"]
            for name, rec in records.items()
            if name != "bounded" and rec.get("dijkstra_settles", 0) > 0
        }
    return result


def merge_run_into_file(path: str | Path, run: dict[str, object]) -> dict[str, object]:
    """Merge ``run`` into the JSON trajectory at ``path`` (created if missing).

    The file keeps one entry per workload key under ``"runs"``; re-running the
    same workload overwrites its entry, so the file always holds the latest
    measurement per workload.  Returns the full document.
    """
    path = Path(path)
    if path.exists():
        document = json.loads(path.read_text())
    else:
        document = {
            "schema": SCHEMA_VERSION,
            "description": (
                "Greedy-spanner distance-oracle benchmark trajectory; "
                "see docs/PERFORMANCE.md. Regenerate with `repro bench-oracles`."
            ),
            "runs": {},
        }
    document.setdefault("runs", {})[workload_key(run["workload"])] = run
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def render_rows(run: dict[str, object]) -> list[dict[str, object]]:
    """Flatten a run record into report-table rows (one per strategy)."""
    rows = []
    speedups = run.get("speedup_vs_bounded", {})
    for name, record in run["strategies"].items():
        row: dict[str, object] = {"oracle": name}
        row.update(record)
        if name in speedups:
            row["speedup_vs_bounded"] = speedups[name]
        rows.append(row)
    return rows
