"""Oracle benchmark matrix: the perf trajectory behind ``repro bench-oracles``.

Runs one workload once per *strategy*, recording wall-clock time, the
deterministic operation counts and the tracemalloc peak-memory high-water
mark of each construction.  Strategies come in two families:

* the exact greedy's distance-oracle strategies
  (:mod:`repro.core.distance_oracle` — ``bounded`` / ``bidirectional`` /
  ``cached``), which are interchangeable by construction, so the bench
  cross-checks that they produced the *identical* spanner edge set;
* the Approximate-Greedy rows (``approx-greedy`` = the incremental
  cluster-graph engine, ``approx-greedy-scratch`` = the same hierarchy
  recomputed from scratch at every bucket transition), whose spanner differs
  from the exact greedy's by design but must be *identical between the two
  engines* — that second cross-check is what certifies the incremental
  engine.

Euclidean workloads are built as lazy
:class:`~repro.metric.closure.MetricClosure` views, so the bench scales to
``n`` in the tens of thousands (approx-greedy rows) without materializing
the Θ(n²) complete graph.

Results are merged into a ``BENCH_oracles.json`` file keyed by workload
signature, so repeated runs at different sizes accumulate a perf trajectory
that ``scripts/check_bench_regression.py`` can diff against the committed
baseline in ``benchmarks/BENCH_oracles.json``.  :data:`BENCH_PRESETS` names
the matrix rows the baseline is built from (regenerate a single row with
``repro bench-oracles --workloads <key>``).  The file format and how to read
it are documented in ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.graph.io import atomic_write_json
from repro.core.approximate_greedy import approximate_greedy_spanner
from repro.core.greedy import greedy_spanner
from repro.experiments.harness import traced_peak_memory
from repro.graph.generators import random_connected_graph
from repro.graph.weighted_graph import WeightedGraph
from repro.metric.base import FiniteMetric
from repro.metric.closure import MetricClosure
from repro.metric.euclidean import EuclideanMetric
from repro.metric.generators import clustered_points, grid_points, uniform_points

SCHEMA_VERSION = 1

DEFAULT_STRATEGIES = ("bounded", "bidirectional", "cached")

#: Approximate-Greedy bench strategies and the cluster engine each one uses.
APPROX_STRATEGY_MODES = {
    "approx-greedy": "incremental",
    "approx-greedy-scratch": "from-scratch",
}

#: Metadata counters copied verbatim into each strategy record when present.
_COUNTER_KEYS = (
    "distance_queries",
    "dijkstra_settles",
    "edges_added",
    "cache_hits",
    "cache_misses",
    "cached_bounds",
    "peak_cached_bounds",
    # Approximate-Greedy rows:
    "approximate_queries",
    "buckets",
    "base_edges",
    "light_edges",
    "heavy_edges",
    "edges_added_by_simulation",
    "cluster_rebuilds",
    "cluster_merges",
    "cluster_transitions",
    "cluster_skipped_transitions",
    "cluster_initial_settles",
    "cluster_transition_settles",
    "cluster_query_settles",
)

#: The deterministic operation counts the regression checker compares.
OPERATION_COUNT_KEYS = (
    "dijkstra_settles",
    "distance_queries",
    "approximate_queries",
    "cluster_merges",
    "cluster_initial_settles",
    "cluster_transition_settles",
    "cluster_query_settles",
)


def workload_key(workload: dict[str, object]) -> str:
    """Return the stable run key of a workload description, e.g.
    ``"uniform-euclidean-n400-d2-seed7-t2.0"``.

    Numeric fields are normalised (ints as ints, stretch/p as floats) so that
    e.g. ``stretch=2`` and ``stretch=2.0`` map to the same key — the key is
    what the regression checker joins baseline and fresh runs on.
    """
    kind = workload["kind"]
    if kind == "uniform-euclidean":
        return "uniform-euclidean-n{}-d{}-seed{}-t{}".format(
            int(workload["n"]), int(workload["dim"]), int(workload["seed"]),
            float(workload["stretch"]),
        )
    if kind == "clustered-euclidean":
        return "clustered-euclidean-n{}-d{}-c{}-seed{}-t{}".format(
            int(workload["n"]), int(workload["dim"]), int(workload["clusters"]),
            int(workload["seed"]), float(workload["stretch"]),
        )
    if kind == "grid-euclidean":
        return "grid-euclidean-s{}-d{}-t{}".format(
            int(workload["side"]), int(workload["dim"]), float(workload["stretch"]),
        )
    return "erdos-renyi-n{}-p{}-seed{}-t{}".format(
        int(workload["n"]), float(workload["p"]), int(workload["seed"]),
        float(workload["stretch"]),
    )


def _build_instance(
    workload: dict[str, object],
) -> tuple[WeightedGraph, Optional[FiniteMetric]]:
    """Instantiate a workload as ``(graph, metric)``; ``metric`` is ``None``
    for graph workloads.

    Metric workloads are returned as lazy complete-graph views
    (:class:`MetricClosure`): the greedy runs stream the sorted pairs, so
    the bench scales to large ``n`` without Θ(n²) memory.
    """
    kind = workload["kind"]
    if kind == "uniform-euclidean":
        metric = uniform_points(
            int(workload["n"]), int(workload["dim"]), seed=int(workload["seed"])
        )
    elif kind == "clustered-euclidean":
        metric = clustered_points(
            int(workload["n"]),
            int(workload["dim"]),
            clusters=int(workload["clusters"]),
            seed=int(workload["seed"]),
        )
    elif kind == "grid-euclidean":
        metric = grid_points(int(workload["side"]), int(workload["dim"]))
    else:
        graph = random_connected_graph(
            int(workload["n"]), float(workload["p"]), seed=int(workload["seed"])
        )
        return graph, None
    return MetricClosure(metric), metric


def euclidean_workload(n: int = 400, dim: int = 2, seed: int = 7, stretch: float = 2.0) -> dict[str, object]:
    """The default bench workload: ``n`` uniform points in the unit ``dim``-cube."""
    return {
        "kind": "uniform-euclidean",
        "n": int(n),
        "dim": int(dim),
        "seed": int(seed),
        "stretch": float(stretch),
    }


def clustered_workload(
    n: int = 10000, dim: int = 2, clusters: int = 50, seed: int = 7, stretch: float = 1.5
) -> dict[str, object]:
    """A clustered-Gaussian bench workload (light spanners' home turf)."""
    return {
        "kind": "clustered-euclidean",
        "n": int(n),
        "dim": int(dim),
        "clusters": int(clusters),
        "seed": int(seed),
        "stretch": float(stretch),
    }


def grid_workload(side: int = 100, dim: int = 2, stretch: float = 1.5) -> dict[str, object]:
    """A regular-grid bench workload (``side**dim`` points, maximal weight ties)."""
    return {
        "kind": "grid-euclidean",
        "side": int(side),
        "dim": int(dim),
        "stretch": float(stretch),
    }


def graph_workload(n: int = 200, p: float = 0.1, seed: int = 7, stretch: float = 2.0) -> dict[str, object]:
    """An Erdős–Rényi bench workload (the Section 3 general-graph setting)."""
    return {
        "kind": "erdos-renyi",
        "n": int(n),
        "p": float(p),
        "seed": int(seed),
        "stretch": float(stretch),
    }


def _build_presets() -> dict[str, tuple[dict[str, object], tuple[str, ...]]]:
    """The named rows of the bench matrix, keyed by workload signature.

    Exact-oracle rows stop at n=2000 (the wall the exact path cannot cross);
    the approx-greedy rows extend the matrix to n=10⁴–2·10⁴, where only the
    near-linear cluster-graph path can go.  The n=2000 dual-engine row is
    the committed evidence for the incremental engine: identical edge sets,
    and a ≥5x drop in settles per bucket transition versus the from-scratch
    replay.
    """
    rows: tuple[tuple[dict[str, object], tuple[str, ...]], ...] = (
        (euclidean_workload(n=150), DEFAULT_STRATEGIES),
        (euclidean_workload(n=400), DEFAULT_STRATEGIES),
        (euclidean_workload(n=1000), ("cached",)),
        (euclidean_workload(n=2000), ("cached",)),
        (graph_workload(n=120, p=0.15), DEFAULT_STRATEGIES),
        (
            euclidean_workload(n=400, stretch=1.5),
            ("cached", "approx-greedy", "approx-greedy-scratch"),
        ),
        (
            euclidean_workload(n=2000, stretch=1.5),
            ("approx-greedy", "approx-greedy-scratch"),
        ),
        (euclidean_workload(n=20000, stretch=1.5), ("approx-greedy",)),
        (clustered_workload(n=10000, clusters=50, stretch=1.5), ("approx-greedy",)),
        (grid_workload(side=100, stretch=1.5), ("approx-greedy",)),
        (euclidean_workload(n=500, dim=8, stretch=1.9), ("approx-greedy",)),
    )
    return {workload_key(workload): (workload, strategies) for workload, strategies in rows}


#: workload key -> (workload description, default strategies for the row).
BENCH_PRESETS = _build_presets()


def valid_strategy_names() -> set[str]:
    """All strategy names ``run_oracle_matrix`` accepts."""
    from repro.core.distance_oracle import ORACLE_FACTORIES

    return set(ORACLE_FACTORIES) | set(APPROX_STRATEGY_MODES)


def approx_epsilon(stretch: float) -> float:
    """Map a bench stretch ``t`` to the Approximate-Greedy ``ε`` (``t = 1+ε``).

    ``derive_parameters`` requires ``ε ∈ (0, 1)``; stretches of 2 and above
    are clamped just below 1 so the approx rows stay runnable on the same
    workloads the exact strategies use (the achieved target is recorded in
    the strategy record as ``epsilon``).
    """
    return min(stretch - 1.0, 0.99)


def _run_strategy(
    name: str,
    graph: WeightedGraph,
    metric: Optional[FiniteMetric],
    stretch: float,
):
    """Build one spanner with the named strategy; returns ``(spanner, extras)``."""
    mode = APPROX_STRATEGY_MODES.get(name)
    if mode is None:
        return greedy_spanner(graph, stretch, oracle=name), {}
    if metric is None:
        raise ValueError(
            f"strategy {name!r} runs Approximate-Greedy and needs a metric "
            f"workload, not {graph!r}"
        )
    epsilon = approx_epsilon(stretch)
    base = (
        "theta"
        if isinstance(metric, EuclideanMetric) and metric.dimension == 2
        else "net-tree"
    )
    spanner = approximate_greedy_spanner(
        metric, epsilon, base=base, cluster_mode=mode
    )
    return spanner, {"epsilon": epsilon}


def run_oracle_matrix(
    workload: dict[str, object],
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    *,
    measure_memory: bool = True,
) -> dict[str, object]:
    """Run one spanner construction per strategy over ``workload``.

    Exact-oracle strategies run the greedy spanner; ``approx-greedy`` /
    ``approx-greedy-scratch`` run Algorithm Approximate-Greedy with the
    incremental / from-scratch cluster engine.  Returns one run record:
    per-strategy seconds, operation counts and (with ``measure_memory``, the
    default) the tracemalloc peak-memory high-water mark of the
    construction, the wall-clock speedup and settle reduction relative to
    the ``"bounded"`` baseline strategy (when benched), and the edge-set
    cross-check verdicts — ``identical_edge_sets`` within the exact family,
    ``approx_identical_edge_sets`` within the approx family (only present
    when an approx strategy ran).  Memory tracing roughly doubles the
    wall-clock numbers; they remain comparable within one run.
    """
    graph, metric = _build_instance(workload)
    stretch = float(workload["stretch"])

    records: dict[str, dict[str, float]] = {}
    exact_reference: Optional[WeightedGraph] = None
    approx_reference: Optional[WeightedGraph] = None
    identical = True
    approx_identical = True
    any_approx = False
    for name in strategies:
        start = time.perf_counter()
        if measure_memory:
            with traced_peak_memory() as read_peak:
                spanner, extras = _run_strategy(name, graph, metric, stretch)
            peak: Optional[int] = read_peak()
        else:
            spanner, extras = _run_strategy(name, graph, metric, stretch)
            peak = None
        seconds = time.perf_counter() - start
        record: dict[str, float] = {"seconds": seconds}
        record.update(extras)
        for key in _COUNTER_KEYS:
            if key in spanner.metadata:
                record[key] = spanner.metadata[key]
        record["spanner_edges"] = float(spanner.number_of_edges)
        if peak is not None:
            record["peak_memory_bytes"] = float(peak)
        records[name] = record
        if name in APPROX_STRATEGY_MODES:
            any_approx = True
            if approx_reference is None:
                approx_reference = spanner.subgraph
            elif not spanner.subgraph.same_edges(approx_reference):
                approx_identical = False
        else:
            if exact_reference is None:
                exact_reference = spanner.subgraph
            elif not spanner.subgraph.same_edges(exact_reference):
                identical = False

    result: dict[str, object] = {
        "workload": dict(workload),
        "strategies": records,
        "identical_edge_sets": identical,
        # Tracing costs several-fold wall clock, so rows measured with and
        # without it are not time-comparable; the flag keeps the trajectory
        # honest when runs with different settings are merged.
        "memory_traced": bool(measure_memory),
    }
    if any_approx:
        result["approx_identical_edge_sets"] = approx_identical
    if "bounded" in records:
        base = records["bounded"]
        result["speedup_vs_bounded"] = {
            name: base["seconds"] / rec["seconds"]
            for name, rec in records.items()
            if name != "bounded" and rec["seconds"] > 0
        }
        result["settle_reduction_vs_bounded"] = {
            name: base["dijkstra_settles"] / rec["dijkstra_settles"]
            for name, rec in records.items()
            if name != "bounded" and rec.get("dijkstra_settles", 0) > 0
        }
    return result


def merge_run_into_file(path: str | Path, run: dict[str, object]) -> dict[str, object]:
    """Merge ``run`` into the JSON trajectory at ``path`` (created if missing).

    The file keeps one entry per workload key under ``"runs"``; re-running the
    same workload overwrites its entry, so the file always holds the latest
    measurement per workload.  Returns the full document.
    """
    path = Path(path)
    if path.exists():
        document = json.loads(path.read_text())
    else:
        document = {
            "schema": SCHEMA_VERSION,
            "description": (
                "Greedy-spanner distance-oracle benchmark trajectory; "
                "see docs/PERFORMANCE.md. Regenerate with `repro bench-oracles`."
            ),
            "runs": {},
        }
    document.setdefault("runs", {})[workload_key(run["workload"])] = run
    atomic_write_json(path, document)
    return document


def render_rows(run: dict[str, object]) -> list[dict[str, object]]:
    """Flatten a run record into report-table rows (one per strategy)."""
    rows = []
    speedups = run.get("speedup_vs_bounded", {})
    for name, record in run["strategies"].items():
        row: dict[str, object] = {"oracle": name}
        row.update(record)
        if name in speedups:
            row["speedup_vs_bounded"] = speedups[name]
        rows.append(row)
    return rows
