"""Experiment harness: result records, timing helpers and the sharded executor.

Every experiment in :mod:`repro.experiments.experiments` returns an
:class:`ExperimentResult` — the experiment id from DESIGN.md's index, the
rows of the regenerated table, and free-text notes recording the paper claim
the rows should be compared against.  Benchmarks print the rendered table so
that ``pytest benchmarks/ --benchmark-only`` output doubles as the data for
EXPERIMENTS.md.

The sharded executor (:func:`run_sharded` with :func:`deterministic_shards`
and :func:`merge_counters`) is the ``multiprocessing`` fan-out behind the
batch verification engine and ``repro bench-verify --workers``: work items
are split into contiguous, order-preserving shards, each shard is processed
by one worker process, and the per-shard results come back in shard order —
so any reduction that is a function of the *sequence* of per-item results
(summed operation counters, ``fsum``-folded profile rows) is identical for
one worker and for N, which is what the determinism property tests pin down.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Optional, Sequence, TypeVar

from repro.experiments.reporting import render_table

T = TypeVar("T")
R = TypeVar("R")


@dataclass
class ExperimentResult:
    """The output of one experiment run.

    Attributes
    ----------
    experiment_id:
        The DESIGN.md identifier, e.g. ``"E3"``.
    title:
        Human-readable experiment title.
    paper_claim:
        The statement from the paper this experiment regenerates.
    rows:
        The measured table rows.
    notes:
        Observations recorded during the run (e.g. which side "won").
    elapsed_seconds:
        Total wall-clock time of the run.
    peak_memory_bytes:
        Python-heap high-water mark of the run as measured by
        ``tracemalloc`` (None when the run was not memory-tracked).
    """

    experiment_id: str
    title: str
    paper_claim: str
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    peak_memory_bytes: Optional[int] = None

    def add_row(self, **values: object) -> None:
        """Append one table row."""
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        """Append a free-text observation."""
        self.notes.append(note)

    def render(self, *, precision: int = 3) -> str:
        """Render the result as a text report (title, claim, table, notes)."""
        parts = [
            f"[{self.experiment_id}] {self.title}",
            f"paper claim: {self.paper_claim}",
            "",
            render_table(self.rows, precision=precision) if self.rows else "(no rows)",
        ]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        if self.peak_memory_bytes is not None:
            parts.append(
                f"(elapsed: {self.elapsed_seconds:.2f}s, "
                f"peak memory: {self.peak_memory_bytes / 1_048_576:.1f} MiB)"
            )
        else:
            parts.append(f"(elapsed: {self.elapsed_seconds:.2f}s)")
        return "\n".join(parts)


#: Accumulator cells of the currently open contexts, innermost last.
#: ``tracemalloc`` keeps one global peak counter, so nested contexts must
#: fold the running segment's peak into every enclosing context before
#: resetting it (see :func:`traced_peak_memory`).  Cells (not plain ints)
#: so a context can recognise its own stack slot by identity.
_peak_stack: list[list[int]] = []


@contextmanager
def traced_peak_memory() -> Iterator[Callable[[], int]]:
    """Context manager measuring the Python-heap high-water mark of its body.

    Yields a zero-argument callable returning the peak (in bytes) observed
    since entry; usable both during and after the ``with`` block.  Nests
    correctly: ``tracemalloc`` has a single global peak counter, so on entry
    the running segment's peak is folded into every enclosing context before
    the counter is reset, and on exit the inner peak is folded back into the
    enclosing contexts (an inner high-water mark is by definition inside
    their windows).  Tracing is only stopped on exit if this context started
    it.  (Tracing costs several-fold wall clock on allocation-heavy code —
    measured 4–9× on the oracle benches — so traced timings are comparable
    with each other but not with untraced runs.)
    """
    started_here = not tracemalloc.is_tracing()
    if started_here:
        tracemalloc.start()
    else:
        segment = tracemalloc.get_traced_memory()[1]
        for cell in _peak_stack:
            if segment > cell[0]:
                cell[0] = segment
    tracemalloc.reset_peak()
    own_cell = [0]
    _peak_stack.append(own_cell)
    closed = [False]

    def read_peak() -> int:
        if not closed[0]:
            # Still open: folds recorded so far plus the live segment.
            live = (
                tracemalloc.get_traced_memory()[1] if tracemalloc.is_tracing() else 0
            )
            return max(own_cell[0], live)
        return own_cell[0]

    try:
        yield read_peak
    finally:
        live = tracemalloc.get_traced_memory()[1]
        for i in range(len(_peak_stack) - 1, -1, -1):
            if _peak_stack[i] is own_cell:  # identity: sibling cells compare equal
                del _peak_stack[i]
                break
        own_cell[0] = max(own_cell[0], live)
        closed[0] = True
        for cell in _peak_stack:
            if own_cell[0] > cell[0]:
                cell[0] = own_cell[0]
        if started_here:
            tracemalloc.stop()


@contextmanager
def timed(
    result: ExperimentResult, *, measure_memory: bool = False
) -> Iterator[ExperimentResult]:
    """Context manager recording elapsed wall-clock time (and peak memory) on ``result``.

    With ``measure_memory`` the body runs under :func:`traced_peak_memory`
    and the high-water mark lands in ``result.peak_memory_bytes`` — the
    column the streaming-pipeline benches use to demonstrate their
    sub-quadratic memory claim.  It is opt-in because tracemalloc tracing
    costs several-fold wall clock on allocation-heavy runs, which would
    distort the timing columns of every experiment.
    """
    start = time.perf_counter()
    if measure_memory:
        try:
            with traced_peak_memory() as read_peak:
                yield result
        finally:
            result.peak_memory_bytes = read_peak()
            result.elapsed_seconds = time.perf_counter() - start
    else:
        try:
            yield result
        finally:
            result.elapsed_seconds = time.perf_counter() - start


# ---------------------------------------------------------------------------
# Sharded parallel executor
# ---------------------------------------------------------------------------
def available_workers() -> int:
    """Return the number of CPUs the scheduler will actually give us."""
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            return max(1, len(affinity(0)))
        except OSError:  # pragma: no cover - platform quirk
            pass
    return max(1, os.cpu_count() or 1)


def resolve_worker_count(workers: Optional[int]) -> int:
    """Normalise a ``--workers`` value: ``None``/``0`` → 1, negative → all CPUs."""
    if workers is None or workers == 0:
        return 1
    if workers < 0:
        return available_workers()
    return int(workers)


def fork_available() -> bool:
    """True when the ``fork`` start method exists (Linux/macOS CPython).

    The executor ships shard *payloads* through the pool but relies on
    workers inheriting large read-only state (the verification engine's
    indexed graphs) from the parent by copy-on-write, which only ``fork``
    provides.  Without it :func:`run_sharded` degrades to inline execution —
    same results, no parallelism.
    """
    return "fork" in multiprocessing.get_all_start_methods()


def deterministic_shards(items: Sequence[T], shard_count: int) -> list[list[T]]:
    """Split ``items`` into at most ``shard_count`` contiguous, non-empty shards.

    Shard boundaries depend only on ``len(items)`` and ``shard_count``
    (balanced sizes, differing by at most one), and concatenating the shards
    reproduces ``items`` exactly — the order-preservation half of the
    determinism contract.
    """
    items = list(items)
    if not items:
        return []
    shard_count = max(1, min(int(shard_count), len(items)))
    base, extra = divmod(len(items), shard_count)
    shards: list[list[T]] = []
    start = 0
    for index in range(shard_count):
        size = base + (1 if index < extra else 0)
        shards.append(items[start : start + size])
        start += size
    return shards


def _run_shard_guarded(task: Callable[[T], R], shard: T) -> tuple[str, object]:
    """Run one shard, capturing any exception as a value.

    Module-level (and wrapped via :func:`functools.partial`, which pickles by
    reference) so the fork pool can ship it; a worker that raises returns
    ``("error", repr(exc))`` instead of poisoning the whole ``Pool.map``.
    """
    try:
        return ("ok", task(shard))
    except Exception as exc:  # noqa: BLE001 - the parent re-raises after retry
        return ("error", repr(exc))


def run_sharded(
    task: Callable[[T], R],
    shards: Sequence[T],
    *,
    workers: Optional[int] = None,
) -> list[R]:
    """Apply ``task`` to every shard, fanning across worker processes.

    Results come back in shard order regardless of which worker finished
    first (``Pool.map`` semantics), so a reduction over the result sequence
    is independent of the worker count.  ``task`` must be a module-level
    function; with one worker (or when ``fork`` is unavailable, or from
    inside a daemonic worker) the shards run inline in the calling process —
    bit-identical results either way.

    Worker failures do not take the whole run down: a shard that raises in
    its worker (or whose worker dies outright) is retried once in-process;
    if the retry fails too, :class:`~repro.errors.ShardFailureError` names
    the shard.  Inline runs get the same retry-once semantics, so the
    failure contract is worker-count independent.
    """
    from repro.errors import ShardFailureError

    def run_inline(index: int, shard: T) -> R:
        try:
            return task(shard)
        except Exception as first:  # noqa: BLE001 - retried once, then named
            try:
                return task(shard)
            except Exception as second:  # noqa: BLE001
                raise ShardFailureError(index, len(shards), second) from first

    shards = list(shards)
    worker_count = min(resolve_worker_count(workers), len(shards))
    inline_only = (
        worker_count <= 1
        or not fork_available()
        # Nested pools are not allowed inside daemonic workers.
        or getattr(multiprocessing.current_process(), "daemon", False)
    )
    if inline_only:
        return [run_inline(index, shard) for index, shard in enumerate(shards)]
    guarded = functools.partial(_run_shard_guarded, task)
    context = multiprocessing.get_context("fork")
    try:
        with context.Pool(processes=worker_count) as pool:
            outcomes = pool.map(guarded, shards)
    except Exception:  # noqa: BLE001 - pool-level crash (e.g. a worker died)
        # The pool machinery itself failed; fall back to a full inline pass
        # (each shard still gets the retry-once contract).
        return [run_inline(index, shard) for index, shard in enumerate(shards)]
    results: list[R] = []
    for index, (status, value) in enumerate(outcomes):
        if status == "ok":
            results.append(value)  # type: ignore[arg-type]
        else:
            # Worker-side failure: one in-process retry, then give the shard
            # a name in the error instead of an opaque pool traceback.
            try:
                results.append(task(shards[index]))
            except Exception as exc:  # noqa: BLE001
                raise ShardFailureError(index, len(shards), exc) from None
    return results


def merge_counters(parts: Iterable[Mapping[str, float]]) -> dict[str, float]:
    """Sum per-shard operation-counter dictionaries key-wise.

    Addition over ints (the counters are settle/pair counts) is associative
    and commutative, so the merge is independent of the sharding — the
    counter half of the determinism contract.
    """
    merged: dict[str, float] = {}
    for part in parts:
        for key, value in part.items():
            merged[key] = merged.get(key, 0) + value
    return merged


@dataclass
class Stopwatch:
    """A tiny helper to time individual steps inside an experiment."""

    _start: float = field(default_factory=time.perf_counter)

    def lap(self) -> float:
        """Return seconds since construction or the previous lap, and reset."""
        now = time.perf_counter()
        elapsed = now - self._start
        self._start = now
        return elapsed
