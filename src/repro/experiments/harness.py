"""Experiment harness: result records and timing helpers.

Every experiment in :mod:`repro.experiments.experiments` returns an
:class:`ExperimentResult` — the experiment id from DESIGN.md's index, the
rows of the regenerated table, and free-text notes recording the paper claim
the rows should be compared against.  Benchmarks print the rendered table so
that ``pytest benchmarks/ --benchmark-only`` output doubles as the data for
EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.experiments.reporting import render_table


@dataclass
class ExperimentResult:
    """The output of one experiment run.

    Attributes
    ----------
    experiment_id:
        The DESIGN.md identifier, e.g. ``"E3"``.
    title:
        Human-readable experiment title.
    paper_claim:
        The statement from the paper this experiment regenerates.
    rows:
        The measured table rows.
    notes:
        Observations recorded during the run (e.g. which side "won").
    elapsed_seconds:
        Total wall-clock time of the run.
    """

    experiment_id: str
    title: str
    paper_claim: str
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def add_row(self, **values: object) -> None:
        """Append one table row."""
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        """Append a free-text observation."""
        self.notes.append(note)

    def render(self, *, precision: int = 3) -> str:
        """Render the result as a text report (title, claim, table, notes)."""
        parts = [
            f"[{self.experiment_id}] {self.title}",
            f"paper claim: {self.paper_claim}",
            "",
            render_table(self.rows, precision=precision) if self.rows else "(no rows)",
        ]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        parts.append(f"(elapsed: {self.elapsed_seconds:.2f}s)")
        return "\n".join(parts)


@contextmanager
def timed(result: ExperimentResult) -> Iterator[ExperimentResult]:
    """Context manager that records the elapsed wall-clock time on ``result``."""
    start = time.perf_counter()
    try:
        yield result
    finally:
        result.elapsed_seconds = time.perf_counter() - start


@dataclass
class Stopwatch:
    """A tiny helper to time individual steps inside an experiment."""

    _start: float = field(default_factory=time.perf_counter)

    def lap(self) -> float:
        """Return seconds since construction or the previous lap, and reset."""
        now = time.perf_counter()
        elapsed = now - self._start
        self._start = now
        return elapsed
