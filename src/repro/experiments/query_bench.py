"""Query-throughput benchmark: the batched multi-source engine vs per-query heapq.

The construction matrix (:mod:`repro.experiments.build_bench`) gates how fast
the spanner is *built*; this matrix gates how fast it is *queried*.  Both
strategies answer the same deterministic batch of ``(source, target)``
distance queries on one shared workload instance:

* ``per-query-heapq`` — :meth:`repro.core.query_engine.QueryEngine.reference_queries_ids`:
  one fresh C-``heapq`` Dijkstra per query, fresh dict state each time.  This
  is the seed idiom every caller used before the engine existed, and the
  denominator of the gated ``query_speedup``.
* ``batched-engine`` — :meth:`repro.core.query_engine.QueryEngine.run_queries_ids`:
  queries grouped by source, one :class:`~repro.graph.heap.IndexedDaryHeap`
  and one distance slab reused across the whole batch via generation-stamped
  lazy reset — no per-query ``O(n)`` reinitialisation.

Every strategy must return the *exact same* distance list — the
``queries_match`` cross-check flag that ``scripts/check_bench_regression.py``
fails on — and the deterministic ``query_settles`` counter is diffed against
the committed baseline in ``benchmarks/BENCH_queries.json`` exactly like the
build trajectory.  Rows marked ``gate_query_speedup`` additionally enforce
``--min-query-speedup`` (default 3×) on ``query_speedup``.
"""

from __future__ import annotations

import json
import math
import random
import time
from pathlib import Path
from typing import Sequence

from repro.graph.io import atomic_write_json

SCHEMA_VERSION = 1

#: Strategy order is execution order; the speedup ratio assumes it.
DEFAULT_STRATEGIES = (
    "per-query-heapq",
    "batched-engine",
)

#: The deterministic operation counts the regression checker compares.
OPERATION_COUNT_KEYS = (
    "query_settles",
    "engine_sources",
)


def query_workload(
    n: int = 2000,
    degree: float = 8.0,
    seed: int = 3,
    queries: int = 256,
    sources: int = 16,
    query_seed: int = 11,
) -> dict[str, object]:
    """A bucketed geometric graph plus a deterministic query batch.

    ``sources`` bounds the number of distinct query sources: batching pays
    off exactly when queries share sources, so the source-pool size is the
    knob that moves the engine between "one SSSP amortized over many
    targets" and "no reuse at all".
    """
    return {
        "kind": "query-bucketed",
        "n": int(n),
        "degree": float(degree),
        "seed": int(seed),
        "queries": int(queries),
        "sources": int(sources),
        "query_seed": int(query_seed),
    }


def workload_key(workload: dict[str, object]) -> str:
    """Stable run key joining baseline and fresh runs of one workload."""
    return "queries-bucketed-n{}-d{}-seed{}-q{}-s{}-qs{}".format(
        int(workload["n"]), float(workload["degree"]), int(workload["seed"]),
        int(workload["queries"]), int(workload["sources"]),
        int(workload["query_seed"]),
    )


def _query_presets() -> dict[str, tuple[dict[str, object], bool]]:
    """The named rows of the query matrix: ``(workload, gate_query_speedup)``.

    The ``n = 2000`` row is CI-sized and gated — the 3× bar is enforced on
    every push, not just offline.  The larger rows are the committed scale
    evidence (regenerate offline; the per-query baseline alone costs minutes
    at ``n = 10⁵``).
    """
    rows: tuple[tuple[dict[str, object], bool], ...] = (
        (query_workload(n=2000, degree=8.0, queries=512, sources=8), True),
        (query_workload(n=20000, degree=6.0, queries=1024, sources=32), True),
        (query_workload(n=100000, degree=6.0, queries=2048, sources=64), True),
    )
    return {workload_key(w): (w, gated) for w, gated in rows}


#: workload key -> (workload, gate_query_speedup).
QUERY_PRESETS = _query_presets()


def _build_instance(workload: dict[str, object]):
    """Instantiate the workload graph as an :class:`IndexedGraph`."""
    from repro.graph.generators import bucketed_geometric_graph
    from repro.graph.indexed_graph import IndexedGraph

    n = int(workload["n"])
    radius = math.sqrt(float(workload["degree"]) / (math.pi * max(1, n)))
    graph = bucketed_geometric_graph(n, radius, seed=int(workload["seed"]))
    return IndexedGraph.from_weighted_graph(graph), graph.number_of_edges


def draw_queries(workload: dict[str, object]) -> tuple[list[int], list[int]]:
    """Draw the deterministic ``(sources, targets)`` id batch for a workload.

    Sources cycle through a fixed pool sampled without replacement; targets
    are drawn uniformly.  Everything is a pure function of ``query_seed``,
    ``n``, ``queries`` and ``sources`` so baseline and fresh runs answer the
    identical batch.
    """
    n = int(workload["n"])
    count = int(workload["queries"])
    pool_size = min(int(workload["sources"]), n)
    rng = random.Random(int(workload["query_seed"]))
    pool = rng.sample(range(n), pool_size)
    sources = [pool[i % pool_size] for i in range(count)]
    targets = [rng.randrange(n) for _ in range(count)]
    return sources, targets


def run_query_bench(
    workload: dict[str, object],
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    *,
    gate_query_speedup: bool = False,
) -> dict[str, object]:
    """Answer the workload's query batch once per strategy; returns one run record.

    The record mirrors the build bench shape (``"strategies"`` keyed by name)
    so :func:`scripts.check_bench_regression.find_regressions` gates both
    trajectories with the same code.
    """
    from repro.core.query_engine import QueryEngine, reference_queries_ids

    indexed, edge_count = _build_instance(workload)
    sources, targets = draw_queries(workload)

    records: dict[str, dict[str, float]] = {}
    answers: dict[str, list[float]] = {}
    for name in strategies:
        record: dict[str, float]
        if name == "per-query-heapq":
            start = time.perf_counter()
            distances, settles = reference_queries_ids(indexed, sources, targets)
            seconds = time.perf_counter() - start
            record = {"query_settles": float(settles)}
        elif name == "batched-engine":
            engine = QueryEngine(indexed)
            start = time.perf_counter()
            distances = engine.run_queries_ids(sources, targets)
            seconds = time.perf_counter() - start
            counters = engine.counters()
            record = {
                "query_settles": float(counters["engine_settles"]),
                "engine_sources": float(counters["engine_sources"]),
            }
        else:
            raise ValueError(f"unknown query strategy {name!r}")
        record["query_seconds"] = seconds
        record["queries_per_sec"] = len(sources) / seconds if seconds > 0 else 0.0
        records[name] = record
        answers[name] = distances

    result: dict[str, object] = {
        "workload": dict(workload),
        "strategies": records,
        "n": indexed.number_of_vertices,
        "edges": float(edge_count),
        "queries": float(len(sources)),
        "sources": float(len(set(sources))),
    }
    if len(answers) > 1:
        reference = next(iter(answers.values()))
        # Exact comparison is intentional: both paths settle in the same
        # total (dist, vertex) order, so the floats must agree bit for bit.
        result["queries_match"] = all(found == reference for found in answers.values())
    if "per-query-heapq" in records and "batched-engine" in records:
        engine_seconds = records["batched-engine"]["query_seconds"]
        if engine_seconds > 0:
            result["query_speedup"] = (
                records["per-query-heapq"]["query_seconds"] / engine_seconds
            )
    if gate_query_speedup:
        result["gate_query_speedup"] = True
    return result


def merge_run_into_file(path: str | Path, run: dict[str, object]) -> dict[str, object]:
    """Merge ``run`` into the query trajectory at ``path`` (created if missing).

    One entry per workload key under ``"runs"``, latest run wins — the same
    contract as the build/oracle/overlay/verify trajectory files.
    """
    path = Path(path)
    if path.exists():
        document = json.loads(path.read_text())
    else:
        document = {
            "schema": SCHEMA_VERSION,
            "description": (
                "Batched query-throughput benchmark trajectory (per-strategy "
                "wall-clock + deterministic settle counters); see "
                "docs/PERFORMANCE.md. Regenerate with `repro bench-queries`."
            ),
            "runs": {},
        }
    document.setdefault("runs", {})[workload_key(run["workload"])] = run
    atomic_write_json(path, document)
    return document


def render_rows(run: dict[str, object]) -> list[dict[str, object]]:
    """Flatten a run record into report-table rows (one per strategy)."""
    rows = []
    for name, record in run["strategies"].items():
        row: dict[str, object] = {"strategy": name}
        row.update(record)
        rows.append(row)
    return rows
