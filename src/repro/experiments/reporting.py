"""Plain-text table rendering for experiment results.

The benchmark harness prints the same kind of rows the paper's claims are
about (edge counts, lightness, degrees, ratios).  Rendering is kept trivial —
fixed-width text tables — because the repository must run without plotting
libraries; the EXPERIMENTS.md tables are produced from the same code.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence


def format_value(value: object, *, precision: int = 3) -> str:
    """Format a cell value: floats get fixed precision, everything else ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render a list of dict rows as a fixed-width text table.

    Parameters
    ----------
    rows:
        The table rows; missing keys render as empty cells.
    columns:
        Column order; defaults to the union of keys in first-seen order.
    title:
        Optional title printed above the table.
    precision:
        Decimal places for float cells.
    """
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    columns = list(columns)

    rendered_rows = [
        [format_value(row.get(column, ""), precision=precision) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(column), *(len(r[i]) for r in rendered_rows)) if rendered_rows else len(column)
        for i, column in enumerate(columns)
    ]

    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = " | ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "-+-".join("-" * width for width in widths)
    lines.append(header)
    lines.append(separator)
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def render_comparison(
    baseline_name: str,
    rows: Sequence[Mapping[str, object]],
    *,
    ratio_columns: Iterable[str],
    name_column: str = "algorithm",
    precision: int = 2,
) -> str:
    """Render rows with extra ``<column>_ratio`` cells relative to a named baseline row.

    Used by the comparison experiment (E6) to print "times sparser / times
    lighter than the greedy spanner" columns directly.
    """
    baseline = next((row for row in rows if row.get(name_column) == baseline_name), None)
    if baseline is None:
        return render_table(rows, precision=precision)
    augmented = []
    for row in rows:
        extended = dict(row)
        for column in ratio_columns:
            base_value = float(baseline.get(column, 0.0) or 0.0)
            value = float(row.get(column, 0.0) or 0.0)
            extended[f"{column}_vs_{baseline_name}"] = (
                value / base_value if base_value else float("inf")
            )
        augmented.append(extended)
    return render_table(augmented, precision=precision)
