"""Fault-injection benchmark: the resilience trajectory behind ``repro bench-faults``.

The distributed stack so far measured overlays on a *perfect* network.  This
bench measures the hardened stack end to end under a seeded
:class:`~repro.distributed.faults.FaultPlan`:

* the hardened flood + echo (:mod:`repro.distributed.resilient`) runs once
  per engine mode over a greedy-spanner overlay, with the plan dropping,
  delaying and severing messages — the record keeps the retry / duplicate /
  timeout / give-up counters and the ``delivery_complete`` guarantee (every
  surviving-reachable vertex reached);
* the spanner is then self-healed around the plan's failed edges
  (:meth:`~repro.core.spanner.Spanner.repair` with ``cross_check=True``), so
  every run re-proves repair ≡ rebuild bit for bit and records the
  ``repair_settles`` vs ``rebuild_settles`` ratio the ≥5× gate rides on;
* routing detours around the failed links with the pre-failure tables
  (:func:`~repro.distributed.routing.evaluate_detour_routing`) and the
  stretch-degradation percentiles land in the same record.

Every number in the record is a pure function of the workload description —
fault schedules are sampled from the seed, message coins are stable hashes —
so ``scripts/check_bench_regression.py`` can diff fresh runs against the
committed baseline in ``benchmarks/BENCH_faults.json`` exactly like the
oracle / overlay / verify trajectories, plus two fault-specific gates: the
``delivery_rate`` floor (never below baseline) and the minimum
repair-vs-rebuild speedup on gated rows.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.graph.io import atomic_write_json
from repro.core.greedy import greedy_spanner
from repro.distributed.faults import FaultPlan
from repro.distributed.resilient import (
    ResilientParams,
    delivery_report,
    resilient_echo,
    resilient_flood,
)
from repro.distributed.routing import evaluate_detour_routing, random_demands
from repro.experiments.overlay_bench import (
    _build_instance as _build_overlay_instance,
    workload_key as _overlay_workload_key,
)

SCHEMA_VERSION = 1

DEFAULT_MODES = ("indexed", "reference")

#: The deterministic operation counts the regression checker compares
#: (protocol counters are ``fault_``-prefixed so they can never collide with
#: another trajectory's keys inside the shared checker).
OPERATION_COUNT_KEYS = (
    "fault_messages",
    "fault_data_sends",
    "fault_retries",
    "fault_acks",
    "fault_duplicates",
    "fault_timers",
    "fault_give_ups",
    "fault_lost",
    "fault_events",
    "fault_echo_messages",
    "fault_echo_retries",
    "fault_echo_give_ups",
    "repair_settles",
    "repair_queries",
    "rebuild_settles",
    "replayed_edges",
    "detours",
    "undelivered",
)

#: Workload keys that describe the fault regime rather than the base instance.
_FAULT_KEYS = (
    "fault_seed",
    "edge_failure_rate",
    "failure_band",
    "node_crash_rate",
    "drop_rate",
    "ack_drop_rate",
    "delay_jitter",
    "repair_oracle",
    "gate_repair_speedup",
)


def fault_workload(
    base: dict[str, object],
    *,
    fault_seed: int = 11,
    edge_failure_rate: float = 0.02,
    failure_band: float = 0.3,
    node_crash_rate: float = 0.0,
    drop_rate: float = 0.05,
    ack_drop_rate: Optional[float] = None,
    delay_jitter: float = 0.25,
    repair_oracle: str = "cached",
    gate_repair_speedup: bool = False,
) -> dict[str, object]:
    """Attach a fault regime to a bench workload description.

    ``gate_repair_speedup`` marks rows whose committed repair-vs-rebuild
    speedup the regression checker holds to ``--min-repair-speedup`` (the
    ISSUE's ≥5× acceptance row sets it).
    """
    workload = dict(base)
    workload["fault_seed"] = int(fault_seed)
    workload["edge_failure_rate"] = float(edge_failure_rate)
    workload["failure_band"] = float(failure_band)
    workload["node_crash_rate"] = float(node_crash_rate)
    workload["drop_rate"] = float(drop_rate)
    if ack_drop_rate is not None:
        workload["ack_drop_rate"] = float(ack_drop_rate)
    workload["delay_jitter"] = float(delay_jitter)
    workload["repair_oracle"] = str(repair_oracle)
    if gate_repair_speedup:
        workload["gate_repair_speedup"] = True
    return workload


def _without_faults(workload: dict[str, object]) -> dict[str, object]:
    return {key: value for key, value in workload.items() if key not in _FAULT_KEYS}


def workload_key(workload: dict[str, object]) -> str:
    """Stable run key: the overlay workload key plus the fault-regime suffix."""
    suffix = "f{}-ef{}-fb{}-nc{}-dr{}-dj{}-o{}".format(
        int(workload["fault_seed"]),
        float(workload["edge_failure_rate"]),
        float(workload["failure_band"]),
        float(workload["node_crash_rate"]),
        float(workload["drop_rate"]),
        float(workload["delay_jitter"]),
        workload["repair_oracle"],
    )
    return f"{_overlay_workload_key(_without_faults(workload))}-{suffix}"


def _build_presets() -> dict[str, tuple[dict[str, object], tuple[str, ...]]]:
    """The named rows of the fault matrix.

    The CI row is small and runs both engines (the tie-for-tie replay
    evidence); the scale row is the ISSUE's acceptance instance — ``n = 10⁴``
    geometric, ≥5% drop, 2% edge failures in the heaviest band — and runs
    the indexed engine only, with the ``bidirectional`` repair oracle (no
    cross-run caching on either side, so repair and rebuild pay the same
    per-query price and the ≥5× gate measures the skipped prefix, not a
    cache artifact).
    """
    from repro.experiments.overlay_bench import geometric_workload

    rows: tuple[tuple[dict[str, object], tuple[str, ...]], ...] = (
        (
            fault_workload(
                geometric_workload(n=300, radius=0.12, seed=7, stretch=1.5),
                fault_seed=11,
                edge_failure_rate=0.02,
                failure_band=0.3,
                node_crash_rate=0.02,
                drop_rate=0.05,
                delay_jitter=0.25,
                repair_oracle="cached",
            ),
            DEFAULT_MODES,
        ),
        (
            fault_workload(
                geometric_workload(n=10000, radius=0.025, seed=7, stretch=1.2),
                fault_seed=11,
                edge_failure_rate=0.02,
                failure_band=0.02,
                node_crash_rate=0.0,
                drop_rate=0.05,
                delay_jitter=0.25,
                repair_oracle="bidirectional",
                gate_repair_speedup=True,
            ),
            ("indexed",),
        ),
    )
    return {workload_key(workload): (workload, modes) for workload, modes in rows}


#: workload key -> (workload, default engine modes).
FAULT_PRESETS = _build_presets()


def _prefixed(row: dict[str, float], prefix: str) -> dict[str, float]:
    return {f"{prefix}{key}": value for key, value in row.items()}


def run_fault_bench(
    workload: dict[str, object],
    modes: Sequence[str] = DEFAULT_MODES,
    *,
    demand_count: int = 32,
    params: Optional[ResilientParams] = None,
) -> dict[str, object]:
    """Run the hardened flood/echo, self-healing repair and detour routing once.

    The record mirrors the other bench shapes (``"strategies"`` keyed by
    engine mode, plus a ``"repair"`` pseudo-strategy holding the replay
    counters) so :func:`scripts.check_bench_regression.find_regressions`
    gates all four trajectories with the same code.  The spanner overlay is
    built once and shared; ``cross_check=True`` means every bench run
    re-proves repair ≡ rebuild instead of trusting it.
    """
    graph, metric = _build_overlay_instance(_without_faults(workload))
    if metric is not None:
        raise ValueError(
            "fault bench needs a materialized overlay graph; metric workloads "
            "have no physical edges to fail"
        )
    stretch = float(workload["stretch"])
    repair_oracle = str(workload.get("repair_oracle", "cached"))

    build_start = time.perf_counter()
    spanner = greedy_spanner(graph, stretch, oracle=repair_oracle)
    build_seconds = time.perf_counter() - build_start
    overlay = spanner.subgraph

    source = min(overlay.vertices(), key=repr)
    plan = FaultPlan.sample(
        overlay,
        seed=int(workload["fault_seed"]),
        edge_failure_rate=float(workload["edge_failure_rate"]),
        failure_band=float(workload["failure_band"]),
        node_crash_rate=float(workload["node_crash_rate"]),
        drop_rate=float(workload["drop_rate"]),
        ack_drop_rate=(
            float(workload["ack_drop_rate"]) if "ack_drop_rate" in workload else None
        ),
        delay_jitter=float(workload["delay_jitter"]),
        protect=(source,),
    )

    records: dict[str, dict[str, float]] = {}
    replays: dict[str, tuple] = {}
    reports: dict[str, dict[str, float]] = {}
    for mode in modes:
        start = time.perf_counter()
        flood = resilient_flood(overlay, source, plan, params=params, mode=mode)
        flood_seconds = time.perf_counter() - start
        echo = resilient_echo(overlay, source, flood, plan, params=params)
        report = delivery_report(overlay, source, plan, flood)

        record: dict[str, float] = {"flood_seconds": flood_seconds}
        record.update(_prefixed(flood.as_row(), "fault_"))
        record.update(_prefixed(echo.as_row(), "fault_"))
        record.update(report)
        records[mode] = record
        reports[mode] = report
        replays[mode] = (
            tuple(sorted(flood.statistics.as_row().items())),
            tuple(sorted((repr(v), t) for v, t in flood.delivery_time.items())),
            tuple(sorted((repr(v), repr(p)) for v, p in flood.parent.items())),
            tuple(sorted(echo.as_row().items())),
        )

    failed = plan.failed_edges()
    start = time.perf_counter()
    repair = spanner.repair(failed, oracle=repair_oracle, cross_check=True)
    repair_seconds = time.perf_counter() - start

    start = time.perf_counter()
    demands = random_demands(overlay, demand_count, seed=int(workload["fault_seed"]))
    detour = evaluate_detour_routing(overlay, demands, set(failed), mode="indexed")
    detour_seconds = time.perf_counter() - start

    repair_record: dict[str, float] = {
        "repair_seconds": repair_seconds,
        "detour_seconds": detour_seconds,
    }
    repair_record.update(repair.counters())
    repair_record.update(detour.as_row())
    records["repair"] = repair_record

    delivery = next(iter(reports.values()))
    result: dict[str, object] = {
        "workload": dict(workload),
        "strategies": records,
        "n": graph.number_of_vertices,
        "build_seconds": build_seconds,
        "spanner_edges": float(spanner.number_of_edges),
        "fault_plan": plan.describe(),
        "delivery_rate": delivery["delivery_rate"],
        "delivery_complete": bool(delivery["delivery_complete"]),
        "repair_matches_rebuild": bool(repair.matches_rebuild),
        "post_repair_verified": bool(repair.verified),
    }
    if repair.rebuild_settles is not None and repair.repair_settles > 0:
        result["repair_speedup"] = repair.rebuild_settles / repair.repair_settles
    if workload.get("gate_repair_speedup"):
        result["gate_repair_speedup"] = True
    if len(reports) > 1:
        reference_replay = next(iter(replays.values()))
        result["fault_replay_match"] = all(
            replay == reference_replay for replay in replays.values()
        )
    return result


def run_flags(run: dict[str, object]) -> dict[str, bool]:
    """The pass/fail flags of one run (the gate and the CLI both read these)."""
    flags = {
        "delivery_complete": bool(run.get("delivery_complete", False)),
        "repair_matches_rebuild": bool(run.get("repair_matches_rebuild", False)),
        "post_repair_verified": bool(run.get("post_repair_verified", False)),
    }
    if "fault_replay_match" in run:
        flags["fault_replay_match"] = bool(run["fault_replay_match"])
    return flags


def merge_run_into_file(path: str | Path, run: dict[str, object]) -> dict[str, object]:
    """Merge ``run`` into the fault trajectory at ``path`` (created if missing).

    One entry per workload key under ``"runs"``, latest run wins — the same
    contract as the other three trajectory files.
    """
    path = Path(path)
    if path.exists():
        document = json.loads(path.read_text())
    else:
        document = {
            "schema": SCHEMA_VERSION,
            "description": (
                "Fault-injection benchmark trajectory (hardened flood/echo "
                "under a seeded FaultPlan, self-healing repair vs rebuild, "
                "detour routing); see docs/RESILIENCE.md. Regenerate with "
                "`repro bench-faults`."
            ),
            "runs": {},
        }
    document.setdefault("runs", {})[workload_key(run["workload"])] = run
    atomic_write_json(path, document)
    return document


def render_rows(run: dict[str, object]) -> list[dict[str, object]]:
    """Flatten a run record into report-table rows (one per strategy)."""
    rows = []
    for name, record in run["strategies"].items():
        row: dict[str, object] = {"mode": name}
        row.update(record)
        rows.append(row)
    return rows
