"""Shared configuration for the benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark file regenerates one experiment from DESIGN.md's index (E1–E8).
Two things happen per file:

* pytest-benchmark times the core construction step (so the timing columns of
  EXPERIMENTS.md are regenerated), and
* the full experiment table is printed to stdout (``-s`` not required: the
  tables are emitted through the ``record_property`` mechanism *and* printed at
  the end of the run via a session-scoped report collector).
"""

from __future__ import annotations

import pytest

_REPORTS: list[str] = []


def pytest_configure(config):
    """Register the markers used by the benchmark suite."""
    config.addinivalue_line(
        "markers",
        "bench_regression: compares fresh BENCH_oracles.json operation counts "
        "against the committed baseline (scripts/check_bench_regression.py)",
    )


def record_experiment_report(text: str) -> None:
    """Collect an experiment report for printing at the end of the session."""
    _REPORTS.append(text)


@pytest.fixture(scope="session")
def experiment_report_collector():
    """Fixture handing benchmarks the report collector."""
    return record_experiment_report


def pytest_sessionfinish(session, exitstatus):
    """Print every collected experiment table after the benchmark summary."""
    if not _REPORTS:
        return
    print("\n")
    print("=" * 78)
    print("EXPERIMENT TABLES (paper-claim reproductions; see EXPERIMENTS.md)")
    print("=" * 78)
    for report in _REPORTS:
        print()
        print(report)
        print("-" * 78)
