"""E12 — the batch verification matrix.

Benchmarks the CI-sized verification rows (geometric n=300 with the greedy
builder, uniform n=150 with theta — the two dual-mode cross-check rows),
asserts the engine-vs-reference contract (identical verdicts, bit-identical
profile floats, a real speedup on the metric row), and — under the
``bench_regression`` marker — emits a fresh ``BENCH_verify.json`` run and
diffs its deterministic ``verify_settles`` / ``profile_settles`` operation
counts against the committed baseline in ``benchmarks/BENCH_verify.json``
via ``scripts/check_bench_regression.py`` (threshold +25%).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.experiments.experiments import experiment_verify_matrix
from repro.experiments.oracle_bench import euclidean_workload
from repro.experiments.overlay_bench import geometric_workload
from repro.experiments.verify_bench import (
    VERIFY_PRESETS,
    merge_run_into_file,
    run_verify_bench,
    verify_workload,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "benchmarks" / "BENCH_verify.json"

GEOMETRIC_BENCH = verify_workload(geometric_workload(n=300), "greedy")
EUCLIDEAN_BENCH = verify_workload(euclidean_workload(n=150, stretch=1.5), "theta")


@pytest.fixture(scope="module")
def geometric_run():
    return run_verify_bench(GEOMETRIC_BENCH)


@pytest.fixture(scope="module")
def euclidean_run():
    return run_verify_bench(EUCLIDEAN_BENCH)


def test_bench_verify_matrix_geometric(benchmark, experiment_report_collector):
    """Time the graph-workload verification row and collect the E12 table."""
    run = benchmark.pedantic(
        run_verify_bench, args=(GEOMETRIC_BENCH,), rounds=1, iterations=1
    )
    assert set(run["strategies"]) == {"indexed", "reference"}
    experiment_report_collector(experiment_verify_matrix(n=150).render())


def test_bench_verify_cross_checks(geometric_run, euclidean_run):
    """Both dual-mode rows: verdicts agree, profile floats are bit-identical."""
    for run in (geometric_run, euclidean_run):
        assert run["verdicts_match"] is True
        assert run["profiles_match"] is True
        for record in run["strategies"].values():
            assert record["verify_ok"] == 1.0
            assert record["sampled_ok"] == 1.0


def test_bench_verify_metric_row_speedup(euclidean_run):
    """The metric row is where the per-pair reference collapses: the batch
    engine must beat it by an order of magnitude even at n=150."""
    assert euclidean_run["speedup_vs_reference"] >= 10.0
    indexed = euclidean_run["strategies"]["indexed"]
    reference = euclidean_run["strategies"]["reference"]
    assert indexed["verify_settles"] < reference["verify_settles"] / 5


def test_verify_presets_include_the_scale_row():
    """The committed matrix must carry the exact n=10^4 edge-verification row."""
    key = "geometric-n10000-r0.025-seed7-t3.0-bbaswana-sen"
    assert key in VERIFY_PRESETS
    workload, modes, profile_sources = VERIFY_PRESETS[key]
    assert modes == ("indexed",)
    assert int(workload["n"]) == 10_000
    assert profile_sources is not None


@pytest.mark.bench_regression
def test_bench_no_verify_operation_count_regression(
    geometric_run, euclidean_run, tmp_path
):
    """Fresh verify/profile settle counts must stay within +25% of baseline."""
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    try:
        from check_bench_regression import find_regressions, load_document
    finally:
        sys.path.pop(0)

    fresh_path = tmp_path / "BENCH_verify.json"
    merge_run_into_file(fresh_path, geometric_run)
    merge_run_into_file(fresh_path, euclidean_run)

    assert BASELINE_PATH.exists(), (
        "committed verification baseline missing; regenerate with "
        "`repro bench-verify --workloads all "
        "--output benchmarks/BENCH_verify.json` (see docs/PERFORMANCE.md)"
    )
    problems = find_regressions(load_document(BASELINE_PATH), load_document(fresh_path))
    assert not problems, "\n".join(problems)
