"""E8 — degree: the greedy blow-up vs bounded-degree constructions.

Times the greedy spanner on the star metric (where its degree is n-1, the
[HM06, Smi09] phenomenon quoted by the paper) and reports the degree table on
star metrics and Euclidean workloads.
"""

from __future__ import annotations

from repro.core.greedy import greedy_spanner_of_metric
from repro.experiments.experiments import experiment_degree
from repro.metric.generators import star_metric


def test_bench_greedy_on_star_metric(benchmark, experiment_report_collector):
    """Time the greedy (1.5)-spanner of the 120-point star metric (degree 119)."""
    metric = star_metric(120)

    spanner = benchmark(greedy_spanner_of_metric, metric, 1.5)
    assert spanner.max_degree == metric.size - 1

    result = experiment_degree(star_sizes=(20, 40, 80, 160), euclidean_sizes=(50, 100, 200))
    experiment_report_collector(result.render())
    star_rows = [r for r in result.rows if r["workload"] == "star"]
    assert all(r["greedy_max_degree"] == r["n"] - 1 for r in star_rows)
