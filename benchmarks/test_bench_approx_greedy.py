"""E5 — Theorem 6: Algorithm Approximate-Greedy in doubling metrics.

Times the approximate-greedy construction and reports the quality
(lightness/degree within constants of exact greedy) and work (distance-query
counts: quadratic for exact, near-linear for approximate) table across n.
"""

from __future__ import annotations

from repro.core.approximate_greedy import approximate_greedy_spanner
from repro.experiments.experiments import experiment_approximate_greedy
from repro.metric.generators import uniform_points


def test_bench_approximate_greedy(benchmark, experiment_report_collector):
    """Time Approximate-Greedy (theta base) on 200 uniform planar points."""
    metric = uniform_points(200, 2, seed=501)

    spanner = benchmark(approximate_greedy_spanner, metric, 0.5, base="theta")
    assert spanner.is_valid()

    result = experiment_approximate_greedy(sizes=(50, 100, 200, 320))
    experiment_report_collector(result.render())
    for row in result.rows:
        assert row["approx_valid"]
        assert row["lightness_ratio"] <= 3.0
