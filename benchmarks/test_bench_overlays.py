"""E11 — the overlay matrix on the indexed distributed engine.

Benchmarks the CI-sized overlay rows (geometric n=300, uniform n=400),
asserts the Section 1.1 trade-off shape per registry builder, and — under
the ``bench_regression`` marker — emits a fresh ``BENCH_overlays.json`` run
and diffs its deterministic ``overlay_*`` operation counts against the
committed baseline in ``benchmarks/BENCH_overlays.json`` via
``scripts/check_bench_regression.py`` (threshold +25%).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.experiments.experiments import experiment_overlay_matrix
from repro.experiments.oracle_bench import euclidean_workload
from repro.experiments.overlay_bench import (
    DEFAULT_GRAPH_BUILDERS,
    DEFAULT_METRIC_BUILDERS,
    OVERLAY_PRESETS,
    geometric_workload,
    merge_run_into_file,
    run_overlay_bench,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "benchmarks" / "BENCH_overlays.json"

GEOMETRIC_BENCH = geometric_workload(n=300)
EUCLIDEAN_BENCH = euclidean_workload(n=400, stretch=1.5)


@pytest.fixture(scope="module")
def geometric_run():
    return run_overlay_bench(GEOMETRIC_BENCH, DEFAULT_GRAPH_BUILDERS)


@pytest.fixture(scope="module")
def euclidean_run():
    return run_overlay_bench(EUCLIDEAN_BENCH, DEFAULT_METRIC_BUILDERS)


def test_bench_overlay_matrix_geometric(benchmark, experiment_report_collector):
    """Time the graph-workload overlay row and collect the E11 table."""
    run = benchmark.pedantic(
        run_overlay_bench, args=(GEOMETRIC_BENCH, DEFAULT_GRAPH_BUILDERS),
        rounds=1, iterations=1,
    )
    assert set(run["strategies"]) == set(DEFAULT_GRAPH_BUILDERS)
    experiment_report_collector(experiment_overlay_matrix(n=150).render())


def test_bench_overlay_tradeoff_shape_geometric(geometric_run):
    """Greedy overlay: near-MST broadcast cost, near-optimal delay, small tables."""
    rows = geometric_run["strategies"]
    greedy, mst = rows["greedy"], rows["mst"]
    stretch = float(GEOMETRIC_BENCH["stretch"])
    assert mst["broadcast_cost"] <= greedy["broadcast_cost"] + 1e-9
    assert greedy["delay_stretch"] <= stretch + 1e-6
    assert greedy["route_stretch_max"] <= stretch + 1e-6
    assert mst["route_stretch_max"] >= greedy["route_stretch_max"] - 1e-9
    assert greedy["max_ports"] <= rows["baswana-sen"]["max_ports"]


def test_bench_overlay_tradeoff_shape_euclidean(euclidean_run):
    """Metric workload: every builder respects its stretch; MST is lightest."""
    rows = euclidean_run["strategies"]
    for name in ("theta", "yao", "greedy"):
        assert rows[name]["route_stretch_max"] <= 1.5 + 1e-6, name
        assert rows[name]["delay_stretch"] <= 1.5 + 1e-6, name
    weights = {name: record["overlay_weight"] for name, record in rows.items()}
    assert weights["mst"] == min(weights.values())
    assert rows["greedy"]["spanner_edges"] <= rows["theta"]["spanner_edges"]
    assert rows["greedy"]["spanner_edges"] <= rows["yao"]["spanner_edges"]


def test_overlay_presets_include_the_scale_row():
    """The committed matrix must carry an n=10^4 row with >= 4 builders."""
    key = "uniform-euclidean-n10000-d2-seed7-t1.5"
    assert key in OVERLAY_PRESETS
    _, builders = OVERLAY_PRESETS[key]
    assert len(builders) >= 4


@pytest.mark.bench_regression
def test_bench_no_overlay_operation_count_regression(
    geometric_run, euclidean_run, tmp_path
):
    """Fresh overlay_* operation counts must stay within +25% of the baseline."""
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    try:
        from check_bench_regression import find_regressions, load_document
    finally:
        sys.path.pop(0)

    fresh_path = tmp_path / "BENCH_overlays.json"
    merge_run_into_file(fresh_path, geometric_run)
    merge_run_into_file(fresh_path, euclidean_run)

    assert BASELINE_PATH.exists(), (
        "committed overlay baseline missing; regenerate with "
        "`repro bench-overlays --workloads all "
        "--output benchmarks/BENCH_overlays.json` (see docs/PERFORMANCE.md)"
    )
    problems = find_regressions(load_document(BASELINE_PATH), load_document(fresh_path))
    assert not problems, "\n".join(problems)
