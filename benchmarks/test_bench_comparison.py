"""E6 — the quoted empirical claim: greedy vs the other constructions.

Regenerates the Farshi–Gudmundsson-style comparison the paper cites ("the
greedy spanner was found to be 10 times sparser and 30 times lighter than any
other examined spanner"): greedy / approximate-greedy / Θ-graph / WSPD /
net-tree / MST on the same Euclidean workloads, uniform and clustered.
"""

from __future__ import annotations

from repro.core.greedy import greedy_spanner_of_metric
from repro.experiments.experiments import experiment_comparison
from repro.metric.generators import clustered_points


def test_bench_comparison_on_clustered_points(benchmark, experiment_report_collector):
    """Time the greedy construction on the clustered workload used in the comparison."""
    metric = clustered_points(120, 2, clusters=6, seed=601)

    spanner = benchmark(greedy_spanner_of_metric, metric, 1.5)
    assert spanner.is_valid()

    uniform = experiment_comparison(n=150, stretch=1.5)
    clustered = experiment_comparison(n=150, stretch=1.5, clustered=True)
    experiment_report_collector(uniform.render())
    experiment_report_collector(clustered.render())

    for result in (uniform, clustered):
        rows = {row["algorithm"]: row for row in result.rows}
        for name, row in rows.items():
            if name in ("greedy", "mst"):
                continue
            assert row["edges_vs_greedy"] >= 1.0
            assert row["weight_vs_greedy"] >= 1.0
