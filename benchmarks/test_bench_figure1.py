"""E1 — Figure 1: the Petersen-plus-star construction.

Regenerates the content of the paper's Figure 1: the greedy 3-spanner of the
combined graph keeps all 15 girth-5 edges while the 9-edge star is a valid,
sparser and lighter 3-spanner — greedy is not universally optimal, yet its
weight equals the optimum of the underlying high-girth graph (the existential
statement).
"""

from __future__ import annotations

from repro.core.greedy import greedy_spanner
from repro.experiments.experiments import experiment_figure1
from repro.graph.generators import figure1_instance


def test_bench_figure1_greedy_construction(benchmark, experiment_report_collector):
    """Time the greedy 3-spanner construction on the Figure 1 graph and report the table."""
    combined, _, _ = figure1_instance(0.1)

    spanner = benchmark(greedy_spanner, combined, 3.0)
    assert spanner.number_of_edges == 15

    result = experiment_figure1()
    experiment_report_collector(result.render())
    for row in result.rows:
        assert row["petersen_edges_kept"] == 15
        assert row["star_edges"] == 9
