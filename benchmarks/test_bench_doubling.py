"""E4 — Corollary 10: greedy (1+eps)-spanners of doubling metrics.

Times the exact metric greedy construction on a 200-point planar set and
reports edges-per-point, degree and lightness across n and eps, against the
old O(log n) and the new constant lightness shapes.
"""

from __future__ import annotations

from repro.core.greedy import greedy_spanner_of_metric
from repro.experiments.experiments import experiment_doubling_metrics
from repro.metric.generators import uniform_points


def test_bench_metric_greedy(benchmark, experiment_report_collector):
    """Time the greedy (1.5)-spanner of 200 uniform planar points."""
    metric = uniform_points(200, 2, seed=401)

    spanner = benchmark(greedy_spanner_of_metric, metric, 1.5)
    assert spanner.number_of_edges <= 6 * metric.size

    result = experiment_doubling_metrics(sizes=(50, 100, 200, 400), epsilons=(0.25, 0.5))
    experiment_report_collector(result.render())
    for row in result.rows:
        assert row["edges_per_point"] <= 8.0
