"""E15 — the query-throughput matrix.

Benchmarks the CI-sized query row (bucketed-geometric n=2000, 512 queries
over an 8-source pool), asserts the exact-distance contract between the
per-query heapq reference and the batched generation-stamped engine, and —
under the ``bench_regression`` marker — emits a fresh ``BENCH_queries.json``
run and diffs its deterministic ``query_settles`` / ``engine_sources``
counters against the committed baseline in ``benchmarks/BENCH_queries.json``
via ``scripts/check_bench_regression.py`` (threshold +25%; every row marked
``gate_query_speedup`` — including the committed ``n = 10⁵`` scale row —
must clear the 3× throughput bar, re-validated from the committed document
on every run).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.experiments.query_bench import (
    QUERY_PRESETS,
    draw_queries,
    merge_run_into_file,
    query_workload,
    run_query_bench,
    workload_key,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "benchmarks" / "BENCH_queries.json"

CI_BENCH = query_workload(n=2000, degree=8.0, queries=512, sources=8)


@pytest.fixture(scope="module")
def ci_run():
    return run_query_bench(CI_BENCH, gate_query_speedup=True)


def test_bench_queries_ci_row(benchmark):
    """Time the CI-sized query row; both strategies must agree exactly."""
    run = benchmark.pedantic(
        run_query_bench, args=(CI_BENCH,), rounds=1, iterations=1
    )
    assert run["queries_match"] is True


def test_bench_queries_exact_distances(ci_run):
    """The batched engine reproduces the per-query reference bit for bit."""
    assert ci_run["queries_match"] is True


def test_bench_queries_engine_amortizes_settles(ci_run):
    """Batching by source must settle far fewer vertices than per-query."""
    reference = ci_run["strategies"]["per-query-heapq"]["query_settles"]
    engine = ci_run["strategies"]["batched-engine"]["query_settles"]
    assert engine < reference / 3


def test_bench_queries_speedup_bar(ci_run):
    """The gated CI row must clear the 3x throughput acceptance bar."""
    assert ci_run["query_speedup"] >= 3.0


def test_query_batch_is_deterministic():
    """The drawn query batch is a pure function of the workload descriptor."""
    again = query_workload(n=2000, degree=8.0, queries=512, sources=8)
    assert draw_queries(CI_BENCH) == draw_queries(again)
    sources, targets = draw_queries(CI_BENCH)
    assert len(sources) == len(targets) == 512
    assert len(set(sources)) == 8


def test_query_presets_include_the_gated_scale_row():
    """The committed matrix must carry the gated n=10^5 query row."""
    key = "queries-bucketed-n100000-d6.0-seed3-q2048-s64-qs11"
    assert key in QUERY_PRESETS
    workload, gated = QUERY_PRESETS[key]
    assert gated is True
    assert int(workload["n"]) == 100_000
    assert workload_key(workload) == key


@pytest.mark.bench_regression
def test_bench_no_query_operation_count_regression(ci_run, tmp_path):
    """Fresh query settle counts must stay within +25% of baseline, and the
    gated speedup rows (fresh CI row and committed scale rows) must clear
    the 3x bar."""
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    try:
        from check_bench_regression import find_regressions, load_document
    finally:
        sys.path.pop(0)

    fresh_path = tmp_path / "BENCH_queries.json"
    merge_run_into_file(fresh_path, ci_run)

    assert BASELINE_PATH.exists(), (
        "committed query baseline missing; regenerate with "
        "`repro bench-queries --workloads all "
        "--output benchmarks/BENCH_queries.json` (see docs/PERFORMANCE.md)"
    )
    problems = find_regressions(load_document(BASELINE_PATH), load_document(fresh_path))
    assert not problems, "\n".join(problems)
