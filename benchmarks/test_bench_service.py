"""E15 — the service chaos matrix.

Benchmarks the CI-sized service row (geometric n=300 with a SIGKILL
injected into band 1 of the cold build), asserts the recovery contract (the
supervised build survives the worker death and the spanner is re-verified,
a bit-flipped artifact is quarantined and rebuilt byte-identical rather
than served, the warm resubmit hits the verified cache, the abandoned
claim's expired lease is reclaimed), and — under the ``bench_regression``
marker — emits a fresh ``BENCH_service.json`` run and diffs its
deterministic recovery counters against the committed baseline via
``scripts/check_bench_regression.py`` (threshold +25%, plus the ≤1%
warm-serve-ratio bar on the gated scale row).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.experiments.harness import fork_available
from repro.experiments.experiments import experiment_service_matrix
from repro.experiments.overlay_bench import geometric_workload
from repro.experiments.service_bench import (
    SERVICE_PRESETS,
    merge_run_into_file,
    run_flags,
    run_service_bench,
    service_workload,
)

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="service chaos bench needs the fork start method"
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "benchmarks" / "BENCH_service.json"

GEOMETRIC_BENCH = service_workload(
    geometric_workload(n=300, radius=0.12, seed=7, stretch=1.5),
    kill_band=1,
    build_workers=2,
)


@pytest.fixture(scope="module")
def geometric_run():
    return run_service_bench(GEOMETRIC_BENCH)


def test_bench_service_matrix_geometric(benchmark, experiment_report_collector):
    """Time the CI service row and collect the E15 table."""
    run = benchmark.pedantic(
        run_service_bench, args=(GEOMETRIC_BENCH,), rounds=1, iterations=1
    )
    assert set(run["strategies"]) == {"service"}
    experiment_report_collector(experiment_service_matrix(n=150).render())


def test_bench_service_contract_flags(geometric_run):
    """Every induced failure must be recovered, never papered over."""
    flags = run_flags(geometric_run)
    assert flags == {
        "chaos_recovered": True,
        "never_served_corrupt": True,
        "rebuild_matches": True,
        "reclaim_completed": True,
        "service_verified": True,
        "warm_cache_hit": True,
    }
    assert geometric_run["tier"] == "greedy-parallel"
    assert not geometric_run["degraded"]


def test_bench_service_recovery_counters(geometric_run):
    """The ledger records exactly the failures the bench induced."""
    record = geometric_run["strategies"]["service"]
    assert record["service_jobs_done"] == 4.0
    assert record["service_jobs_failed"] == 0.0
    assert record["service_worker_deaths"] >= 1.0
    assert record["service_corrupt_quarantined"] == 1.0
    assert record["service_corrupt_rebuilds"] == 1.0
    assert record["service_lease_reclaims"] == 1.0
    assert record["service_poison_quarantined"] == 0.0


def test_service_presets_include_the_gated_scale_row():
    """The committed matrix must carry the gated n=10^4 serving-latency row."""
    key = "geometric-n10000-r0.025-seed7-t1.2-k1-w2"
    assert key in SERVICE_PRESETS
    workload = SERVICE_PRESETS[key]
    assert int(workload["n"]) == 10_000
    assert workload["gate_serve_ratio"] is True
    assert int(workload["kill_band"]) == 1


@pytest.mark.bench_regression
def test_bench_no_service_operation_count_regression(geometric_run, tmp_path):
    """Fresh recovery counters must stay within +25% of baseline, every
    recovery flag must hold, and the gated scale row must keep its ≤1%
    warm-serve-ratio evidence."""
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    try:
        from check_bench_regression import find_regressions, load_document
    finally:
        sys.path.pop(0)

    fresh_path = tmp_path / "BENCH_service.json"
    merge_run_into_file(fresh_path, geometric_run)

    assert BASELINE_PATH.exists(), (
        "committed service baseline missing; regenerate with "
        "`repro bench-service --workloads all "
        "--output benchmarks/BENCH_service.json` (see docs/SERVICE.md)"
    )
    problems = find_regressions(load_document(BASELINE_PATH), load_document(fresh_path))
    assert not problems, "\n".join(problems)
