"""Runtime-scaling benchmarks: greedy vs approximate-greedy vs baselines.

These back the runtime statements of the paper's Sections 1.2 and 5: the
exact greedy spanner's work grows quadratically in n (it must examine all
interpoint distances), while the approximate-greedy algorithm and the
constructive baselines grow near-linearly.  pytest-benchmark records the
timings per n; the printed table records the operation counts, which are the
implementation-independent quantity.
"""

from __future__ import annotations

import pytest

from repro.core.approximate_greedy import approximate_greedy_spanner
from repro.core.greedy import greedy_spanner_of_metric
from repro.experiments.harness import ExperimentResult, timed
from repro.metric.generators import uniform_points
from repro.spanners.theta_graph import cones_for_stretch, theta_graph_spanner


@pytest.mark.parametrize("n", [50, 100, 200])
def test_bench_exact_greedy_scaling(benchmark, n):
    """Exact metric greedy at increasing n (quadratic distance-query growth)."""
    metric = uniform_points(n, 2, seed=800 + n)
    spanner = benchmark(greedy_spanner_of_metric, metric, 1.5)
    assert spanner.metadata["distance_queries"] == n * (n - 1) / 2


@pytest.mark.parametrize("n", [50, 100, 200])
def test_bench_approximate_greedy_scaling(benchmark, n):
    """Approximate-greedy at increasing n (near-linear query growth)."""
    metric = uniform_points(n, 2, seed=800 + n)
    spanner = benchmark(approximate_greedy_spanner, metric, 0.5, base="theta")
    assert spanner.metadata["approximate_queries"] < n * (n - 1) / 2


@pytest.mark.parametrize("n", [50, 100, 200])
def test_bench_theta_graph_scaling(benchmark, n):
    """Θ-graph construction at increasing n (the fast-but-heavy baseline)."""
    metric = uniform_points(n, 2, seed=800 + n)
    spanner = benchmark(theta_graph_spanner, metric, cones_for_stretch(1.5))
    assert spanner.number_of_edges <= cones_for_stretch(1.5) * n


def test_bench_scaling_table(experiment_report_collector, benchmark):
    """Summarise operation counts vs n in one table (printed with the reports)."""
    result = ExperimentResult(
        experiment_id="E5b",
        title="Work scaling: exact greedy vs approximate-greedy",
        paper_claim=(
            "The exact greedy algorithm examines all n(n-1)/2 distances; "
            "Approximate-Greedy examines only the O(n) edges of the bounded-degree "
            "base spanner (Section 5.1), giving near-linear work growth."
        ),
    )
    with timed(result):
        for n in (50, 100, 200, 400):
            metric = uniform_points(n, 2, seed=900 + n)
            exact = greedy_spanner_of_metric(metric, 1.5)
            approx = approximate_greedy_spanner(metric, 0.5, base="theta")
            result.add_row(
                n=n,
                exact_queries=exact.metadata["distance_queries"],
                exact_settles=exact.metadata["dijkstra_settles"],
                approx_queries=approx.metadata["approximate_queries"],
                approx_base_edges=approx.metadata["base_edges"],
                exact_queries_per_n=exact.metadata["distance_queries"] / n,
                approx_queries_per_n=approx.metadata["approximate_queries"] / n,
            )
    experiment_report_collector(result.render())
    # The per-n exact query count grows linearly (quadratic total); the per-n
    # approximate count stays roughly flat (near-linear total).
    first, last = result.rows[0], result.rows[-1]
    assert last["exact_queries_per_n"] > 4 * first["exact_queries_per_n"]
    assert last["approx_queries_per_n"] < 3 * first["approx_queries_per_n"]
    # Give pytest-benchmark something cheap to time so the fixture is satisfied.
    benchmark(lambda: None)
