"""Ablation benchmarks for the design choices DESIGN.md calls out.

Two ablations:

* **Distance-oracle ablation** (greedy algorithm): cutoff-pruned vs full
  Dijkstra.  Same output by construction; the pruned oracle settles far fewer
  vertices — the optimisation every practical greedy implementation relies on.
* **Approximate-greedy parameter ablation**: bucket ratio μ and cluster
  radius factor trade extra kept edges (quality) against cluster-graph size
  and rebuild frequency (work).  The output must remain a valid spanner for
  every setting — only the constants move.
"""

from __future__ import annotations

import pytest

from repro.core.approximate_greedy import approximate_greedy_spanner
from repro.core.greedy import greedy_spanner
from repro.experiments.harness import ExperimentResult, timed
from repro.graph.generators import random_connected_graph
from repro.metric.generators import uniform_points


@pytest.mark.parametrize("oracle", ["bounded", "full"])
def test_bench_oracle_ablation(benchmark, oracle):
    """Time the greedy construction under each distance-oracle strategy."""
    graph = random_connected_graph(100, 0.15, seed=901)
    spanner = benchmark(greedy_spanner, graph, 2.0, oracle=oracle)
    assert spanner.is_valid()


def test_bench_oracle_ablation_table(benchmark, experiment_report_collector):
    """Report the settle counts of the two oracle strategies side by side."""
    result = ExperimentResult(
        experiment_id="A1",
        title="Ablation: bounded vs full Dijkstra inside the greedy algorithm",
        paper_claim=(
            "The greedy algorithm only needs to know whether the current spanner "
            "distance exceeds t*w(e); pruning the Dijkstra at that cutoff does not "
            "change the output but does far less work (Bose et al. 2010)."
        ),
    )
    with timed(result):
        for n in (60, 120):
            graph = random_connected_graph(n, 0.15, seed=902 + n)
            bounded = greedy_spanner(graph, 2.0, oracle="bounded")
            full = greedy_spanner(graph, 2.0, oracle="full")
            assert bounded.subgraph.same_edges(full.subgraph)
            result.add_row(
                n=n,
                edges=bounded.number_of_edges,
                bounded_settles=bounded.metadata["dijkstra_settles"],
                full_settles=full.metadata["dijkstra_settles"],
                settle_ratio=full.metadata["dijkstra_settles"]
                / max(bounded.metadata["dijkstra_settles"], 1.0),
            )
    experiment_report_collector(result.render())
    assert all(row["settle_ratio"] >= 1.0 for row in result.rows)
    benchmark(lambda: None)


@pytest.mark.parametrize("bucket_ratio", [2.0, 4.0, 16.0])
def test_bench_approx_greedy_bucket_ablation(benchmark, bucket_ratio):
    """Time approximate-greedy under different bucket ratios (μ)."""
    metric = uniform_points(150, 2, seed=903)
    spanner = benchmark(
        approximate_greedy_spanner, metric, 0.5, base="theta", bucket_ratio=bucket_ratio
    )
    assert spanner.is_valid()


def test_bench_approx_greedy_ablation_table(benchmark, experiment_report_collector):
    """Report quality/work as the bucket ratio and cluster radius factor vary."""
    metric = uniform_points(150, 2, seed=904)
    result = ExperimentResult(
        experiment_id="A2",
        title="Ablation: Approximate-Greedy bucket ratio and cluster radius",
        paper_claim=(
            "Section 5.1: the bucket ratio mu and the cluster radius control how "
            "coarse the cluster graph is; coarser settings do less work per query "
            "but keep more edges. The stretch guarantee must hold for every setting."
        ),
    )
    with timed(result):
        for bucket_ratio in (2.0, 4.0, 16.0):
            for radius_factor in (0.01, 0.03, 0.1):
                spanner = approximate_greedy_spanner(
                    metric,
                    0.5,
                    base="theta",
                    bucket_ratio=bucket_ratio,
                    cluster_radius_factor=radius_factor,
                )
                result.add_row(
                    bucket_ratio=bucket_ratio,
                    radius_factor=radius_factor,
                    edges=spanner.number_of_edges,
                    lightness=spanner.lightness(),
                    buckets=spanner.metadata["buckets"],
                    queries=spanner.metadata["approximate_queries"],
                    valid=spanner.is_valid(),
                )
    experiment_report_collector(result.render())
    assert all(row["valid"] for row in result.rows)
    benchmark(lambda: None)
