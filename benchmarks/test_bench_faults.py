"""E13 — the fault-injection matrix.

Benchmarks the CI-sized fault row (geometric n=300, 5% drop, heavy-band edge
failures, node crashes), asserts the robustness contract (delivery completes
to every surviving-reachable vertex, both engines replay the fault schedule
tie for tie, repair is bit-identical to a from-scratch rebuild and
re-certified), and — under the ``bench_regression`` marker — emits a fresh
``BENCH_faults.json`` run and diffs its deterministic protocol/repair
counters against the committed baseline via
``scripts/check_bench_regression.py`` (threshold +25%, plus the
delivery-rate floor and the ≥5× repair-speedup bar on the gated scale row).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.experiments.experiments import experiment_fault_matrix
from repro.experiments.fault_bench import (
    FAULT_PRESETS,
    fault_workload,
    merge_run_into_file,
    run_fault_bench,
    run_flags,
)
from repro.experiments.overlay_bench import geometric_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "benchmarks" / "BENCH_faults.json"

GEOMETRIC_BENCH = fault_workload(
    geometric_workload(n=300, radius=0.12, seed=7, stretch=1.5),
    fault_seed=11,
    edge_failure_rate=0.02,
    failure_band=0.3,
    node_crash_rate=0.02,
    drop_rate=0.05,
    delay_jitter=0.25,
    repair_oracle="cached",
)


@pytest.fixture(scope="module")
def geometric_run():
    return run_fault_bench(GEOMETRIC_BENCH)


def test_bench_fault_matrix_geometric(benchmark, experiment_report_collector):
    """Time the CI fault row and collect the E13 table."""
    run = benchmark.pedantic(
        run_fault_bench, args=(GEOMETRIC_BENCH,), rounds=1, iterations=1
    )
    assert set(run["strategies"]) == {"indexed", "reference", "repair"}
    experiment_report_collector(experiment_fault_matrix(n=150).render())


def test_bench_fault_contract_flags(geometric_run):
    """Delivery completes, engines replay tie for tie, repair ≡ rebuild."""
    flags = run_flags(geometric_run)
    assert flags == {
        "delivery_complete": True,
        "fault_replay_match": True,
        "post_repair_verified": True,
        "repair_matches_rebuild": True,
    }
    assert geometric_run["delivery_rate"] >= 1.0


def test_bench_fault_engines_share_counters(geometric_run):
    """Both engine rows carry identical fault counters (the replay evidence)."""
    indexed = geometric_run["strategies"]["indexed"]
    reference = geometric_run["strategies"]["reference"]
    for key, value in indexed.items():
        if key.startswith("fault_"):
            assert reference[key] == value, key


def test_fault_presets_include_the_gated_scale_row():
    """The committed matrix must carry the exact n=10^4 acceptance row."""
    key = "geometric-n10000-r0.025-seed7-t1.2-f11-ef0.02-fb0.02-nc0.0-dr0.05-dj0.25-obidirectional"
    assert key in FAULT_PRESETS
    workload, modes = FAULT_PRESETS[key]
    assert modes == ("indexed",)
    assert int(workload["n"]) == 10_000
    assert float(workload["drop_rate"]) >= 0.05
    assert float(workload["edge_failure_rate"]) >= 0.02
    assert workload["gate_repair_speedup"] is True


@pytest.mark.bench_regression
def test_bench_no_fault_operation_count_regression(geometric_run, tmp_path):
    """Fresh fault/repair counters must stay within +25% of baseline, the
    delivery rate must not drop, and the gated scale row must keep its ≥5×
    repair-vs-rebuild evidence."""
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    try:
        from check_bench_regression import find_regressions, load_document
    finally:
        sys.path.pop(0)

    fresh_path = tmp_path / "BENCH_faults.json"
    merge_run_into_file(fresh_path, geometric_run)

    assert BASELINE_PATH.exists(), (
        "committed fault baseline missing; regenerate with "
        "`repro bench-faults --workloads all "
        "--output benchmarks/BENCH_faults.json` (see docs/RESILIENCE.md)"
    )
    problems = find_regressions(load_document(BASELINE_PATH), load_document(fresh_path))
    assert not problems, "\n".join(problems)
