"""E2 — Lemma 3: the only t-spanner of the greedy spanner is itself.

Times the exhaustive single-edge-removal verification of Lemma 3 on a
mid-sized random graph and reports the fixed-point / no-redundant-edge /
contains-MST table across sizes and stretches.
"""

from __future__ import annotations

from repro.core.greedy import greedy_spanner
from repro.core.optimality import verify_lemma3_self_spanner
from repro.experiments.experiments import experiment_lemma3
from repro.graph.generators import random_connected_graph


def test_bench_lemma3_verification(benchmark, experiment_report_collector):
    """Time the Lemma 3 check on a greedy 2-spanner of a 60-vertex random graph."""
    graph = random_connected_graph(60, 0.15, seed=205)
    spanner = greedy_spanner(graph, 2.0)

    holds = benchmark(verify_lemma3_self_spanner, spanner)
    assert holds

    result = experiment_lemma3(sizes=(20, 40, 80), stretches=(1.5, 2.0, 3.0))
    experiment_report_collector(result.render())
    assert all(row["fixed_point"] and row["no_redundant_edge"] for row in result.rows)
