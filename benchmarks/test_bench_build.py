"""E14 — the construction matrix.

Benchmarks the CI-sized construction rows (bucketed-geometric n=300 and the
streamed-metric n=150 row), asserts the byte-identical-build contract across
all four strategies (per-edge list path, cached serial, CSR band-parallel
with 1 and N workers), and — under the ``bench_regression`` marker — emits a
fresh ``BENCH_build.json`` run and diffs its deterministic ``build_*``
filter/replay counters against the committed baseline in
``benchmarks/BENCH_build.json`` via ``scripts/check_bench_regression.py``
(threshold +25%; the gated ``n = 10⁵`` scale row's ``build_speedup`` bar is
re-validated from the committed document on every run).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.experiments.build_bench import (
    BUILD_PRESETS,
    bucketed_workload,
    euclidean_build_workload,
    merge_run_into_file,
    run_build_bench,
)
from repro.experiments.experiments import experiment_build_matrix

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "benchmarks" / "BENCH_build.json"

BUCKETED_BENCH = bucketed_workload(n=300, degree=16.0)
EUCLIDEAN_BENCH = euclidean_build_workload(n=150, stretch=1.5)


@pytest.fixture(scope="module")
def bucketed_run():
    return run_build_bench(BUCKETED_BENCH, workers=2)


@pytest.fixture(scope="module")
def euclidean_run():
    return run_build_bench(EUCLIDEAN_BENCH, workers=2)


def test_bench_build_matrix_bucketed(benchmark, experiment_report_collector):
    """Time the bucketed-geometric construction row and collect the E14 table."""
    run = benchmark.pedantic(
        run_build_bench, args=(BUCKETED_BENCH,), kwargs={"workers": 2},
        rounds=1, iterations=1,
    )
    assert run["builds_match"] is True
    experiment_report_collector(experiment_build_matrix(n=150, workers=2).render())


def test_bench_build_cross_checks(bucketed_run, euclidean_run):
    """Both rows: every strategy produced the byte-identical greedy spanner."""
    for run in (bucketed_run, euclidean_run):
        assert run["builds_match"] is True
        edge_counts = {
            record["spanner_edges"] for record in run["strategies"].values()
        }
        assert len(edge_counts) == 1


def test_bench_build_metric_row_speedup(euclidean_run):
    """On the streamed complete graph the per-edge baseline pays one bounded
    ball per pair; the banded CSR path must beat it clearly even at n=150."""
    assert euclidean_run["build_speedup"] >= 3.0


def test_build_presets_include_the_gated_scale_row():
    """The committed matrix must carry the gated n=10^5 construction row."""
    key = "bucketed-n100000-d96.0-seed3-t2.0"
    assert key in BUILD_PRESETS
    workload, strategies, gated = BUILD_PRESETS[key]
    assert gated is True
    assert int(workload["n"]) == 100_000
    assert "greedy-edge-list" in strategies and "csr-parallel-w1" in strategies


@pytest.mark.bench_regression
def test_bench_no_build_operation_count_regression(
    bucketed_run, euclidean_run, tmp_path
):
    """Fresh build filter/replay counts must stay within +25% of baseline."""
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    try:
        from check_bench_regression import find_regressions, load_document
    finally:
        sys.path.pop(0)

    fresh_path = tmp_path / "BENCH_build.json"
    merge_run_into_file(fresh_path, bucketed_run)
    merge_run_into_file(fresh_path, euclidean_run)

    assert BASELINE_PATH.exists(), (
        "committed construction baseline missing; regenerate with "
        "`repro bench-build --workloads all "
        "--output benchmarks/BENCH_build.json` (see docs/PERFORMANCE.md)"
    )
    problems = find_regressions(load_document(BASELINE_PATH), load_document(fresh_path))
    assert not problems, "\n".join(problems)
