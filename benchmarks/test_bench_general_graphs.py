"""E3 — Corollary 4: greedy spanners of general weighted graphs.

Times the greedy (2k-1)-spanner construction on a dense random graph and
reports the size / lightness table across n and k, compared against the
Althöfer size bound, the Chechik–Wulff-Nilsen lightness bound (which Theorem 4
transfers to the greedy spanner) and the Baswana–Sen baseline.
"""

from __future__ import annotations

from repro.core.greedy import greedy_spanner
from repro.experiments.experiments import experiment_general_graphs
from repro.graph.generators import random_connected_graph


def test_bench_greedy_on_general_graph(benchmark, experiment_report_collector):
    """Time the greedy 3-spanner on a 150-vertex random graph (k=2)."""
    graph = random_connected_graph(150, 0.15, seed=301)

    spanner = benchmark(greedy_spanner, graph, 3.0)
    assert spanner.is_valid()

    result = experiment_general_graphs(sizes=(50, 100, 200), ks=(2, 3))
    experiment_report_collector(result.render())
    for row in result.rows:
        assert row["greedy_wins_size"] and row["greedy_wins_lightness"]
        assert row["greedy_edges"] <= row["size_bound"]
