"""E7 — Section 1.1 motivation: broadcast over spanner overlays.

Times the flood broadcast over the greedy-spanner overlay of a random
geometric network and reports the communication-cost / delivery-delay table
for the full graph, the MST, the greedy spanner and Baswana–Sen.
"""

from __future__ import annotations

from repro.core.greedy import greedy_spanner
from repro.distributed.broadcast import flood_broadcast
from repro.experiments.experiments import experiment_broadcast
from repro.graph.generators import random_geometric_graph


def test_bench_broadcast_over_greedy_overlay(benchmark, experiment_report_collector):
    """Time one flood broadcast over the greedy 1.5-spanner of a 150-node network."""
    graph = random_geometric_graph(150, 0.15, seed=701)
    overlay = greedy_spanner(graph, 1.5).subgraph
    source = next(iter(graph.vertices()))

    stats, delivery = benchmark(flood_broadcast, overlay, source)
    assert len(delivery) == graph.number_of_vertices

    result = experiment_broadcast(n=150)
    experiment_report_collector(result.render())
    rows = {row["overlay"]: row for row in result.rows}
    assert rows["greedy-spanner"]["communication_cost"] < rows["full-graph"]["communication_cost"]
    assert rows["greedy-spanner"]["delay_stretch"] <= 1.5 + 1e-6
