"""E10 — the distance-oracle strategy matrix on the greedy hot path.

Benchmarks the default (cached) greedy path, cross-checks that every oracle
strategy builds the *identical* greedy spanner while the fast strategies do
strictly less work, and — under the ``bench_regression`` marker — emits a
fresh ``BENCH_oracles.json`` run and diffs its deterministic operation
counts against the committed baseline in ``benchmarks/BENCH_oracles.json``
via ``scripts/check_bench_regression.py`` (threshold +25%).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.core.greedy import greedy_spanner_of_metric
from repro.experiments.experiments import experiment_oracle_matrix
from repro.experiments.oracle_bench import (
    BENCH_PRESETS,
    euclidean_workload,
    graph_workload,
    merge_run_into_file,
    run_oracle_matrix,
)
from repro.metric.generators import uniform_points

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "benchmarks" / "BENCH_oracles.json"

EUCLIDEAN_BENCH = euclidean_workload(n=150)
GRAPH_BENCH = graph_workload(n=120, p=0.15)
APPROX_BENCH_KEY = "uniform-euclidean-n400-d2-seed7-t1.5"


@pytest.fixture(scope="module")
def euclidean_run():
    return run_oracle_matrix(EUCLIDEAN_BENCH)


@pytest.fixture(scope="module")
def graph_run():
    return run_oracle_matrix(GRAPH_BENCH)


@pytest.fixture(scope="module")
def approx_run():
    workload, strategies = BENCH_PRESETS[APPROX_BENCH_KEY]
    return run_oracle_matrix(workload, strategies=strategies)


def test_bench_default_greedy_path(benchmark):
    """Time one greedy construction on the default (cached-oracle) hot path."""
    metric = uniform_points(int(EUCLIDEAN_BENCH["n"]), 2, seed=int(EUCLIDEAN_BENCH["seed"]))
    spanner = benchmark.pedantic(
        greedy_spanner_of_metric, args=(metric, EUCLIDEAN_BENCH["stretch"]), rounds=1, iterations=1
    )
    assert spanner.metadata["cache_hits"] > 0


def test_bench_oracle_matrix_euclidean(euclidean_run, experiment_report_collector):
    """All strategies agree on the Euclidean workload; the fast ones do less work."""
    assert euclidean_run["identical_edge_sets"]
    strategies = euclidean_run["strategies"]
    assert strategies["cached"]["dijkstra_settles"] < strategies["bounded"]["dijkstra_settles"]
    assert strategies["bidirectional"]["dijkstra_settles"] < strategies["bounded"]["dijkstra_settles"]
    result = experiment_oracle_matrix(n=int(EUCLIDEAN_BENCH["n"]))
    experiment_report_collector(result.render())


def test_bench_oracle_matrix_general_graph(graph_run):
    """All strategies agree on the Erdős–Rényi workload too (Section 3 setting)."""
    assert graph_run["identical_edge_sets"]
    strategies = graph_run["strategies"]
    assert strategies["cached"]["dijkstra_settles"] <= strategies["bounded"]["dijkstra_settles"]


def test_bench_approx_engines_agree_and_incremental_wins(approx_run):
    """The incremental and from-scratch cluster engines build the identical
    approximate-greedy spanner, and incremental transitions settle at least
    5x less than the from-scratch replay (the PR's headline claim; the
    committed n=2000 row in BENCH_oracles.json shows the same shape)."""
    assert approx_run["approx_identical_edge_sets"]
    incremental = approx_run["strategies"]["approx-greedy"]
    scratch = approx_run["strategies"]["approx-greedy-scratch"]
    assert incremental["spanner_edges"] == scratch["spanner_edges"]
    assert incremental["cluster_query_settles"] == scratch["cluster_query_settles"]
    if incremental["cluster_transitions"] > 0:
        assert scratch["cluster_transition_settles"] >= 5.0 * max(
            incremental["cluster_transition_settles"], 1.0
        )


@pytest.mark.bench_regression
def test_bench_no_operation_count_regression(euclidean_run, graph_run, approx_run, tmp_path):
    """Fresh operation counts must stay within +25% of the committed baseline."""
    sys.path.insert(0, str(REPO_ROOT / "scripts"))
    try:
        from check_bench_regression import find_regressions, load_document
    finally:
        sys.path.pop(0)

    fresh_path = tmp_path / "BENCH_oracles.json"
    merge_run_into_file(fresh_path, euclidean_run)
    merge_run_into_file(fresh_path, graph_run)
    merge_run_into_file(fresh_path, approx_run)

    assert BASELINE_PATH.exists(), (
        "committed baseline missing; regenerate with "
        "`repro bench-oracles --n 150 --output benchmarks/BENCH_oracles.json` and "
        "`repro bench-oracles --kind graph --n 120 --p 0.15 "
        "--output benchmarks/BENCH_oracles.json` (see docs/PERFORMANCE.md)"
    )
    problems = find_regressions(load_document(BASELINE_PATH), load_document(fresh_path))
    assert not problems, "\n".join(problems)
