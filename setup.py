"""Setup shim so `pip install -e .` works on environments without the wheel package."""
from setuptools import setup

setup()
