#!/usr/bin/env python3
"""Approximate-Greedy (Section 5): near-greedy quality at a fraction of the work.

Builds (1+ε)-spanners of growing Euclidean point sets two ways:

* the exact greedy algorithm, which examines all n(n-1)/2 interpoint
  distances, and
* Algorithm Approximate-Greedy, which starts from a bounded-degree base
  spanner (Θ-graph here, the substrate of the original Euclidean algorithm of
  Das–Narasimhan / Gudmundsson et al.) and simulates the greedy algorithm on
  a coarse cluster graph,

and prints the quality (edges, lightness, degree) and work (distance-query
counts, wall-clock) side by side.  The shape to look for is the paper's
Theorem 6: quality within a constant factor, work dropping from quadratic to
near-linear.

Run with::

    python examples/approximate_greedy_demo.py
"""

from __future__ import annotations

import time

from repro import approximate_greedy_spanner
from repro.core.greedy import greedy_spanner_of_metric
from repro.experiments.reporting import render_table
from repro.metric.generators import uniform_points


def main() -> None:
    epsilon = 0.5
    rows = []
    for n in (50, 100, 200, 400):
        metric = uniform_points(n, 2, seed=100 + n)

        start = time.perf_counter()
        exact = greedy_spanner_of_metric(metric, 1.0 + epsilon)
        exact_seconds = time.perf_counter() - start

        start = time.perf_counter()
        approx = approximate_greedy_spanner(metric, epsilon, base="theta")
        approx_seconds = time.perf_counter() - start

        rows.append(
            {
                "n": n,
                "exact edges": exact.number_of_edges,
                "approx edges": approx.number_of_edges,
                "exact lightness": exact.lightness(),
                "approx lightness": approx.lightness(),
                "exact degree": exact.max_degree,
                "approx degree": approx.max_degree,
                "exact queries": exact.metadata["distance_queries"],
                "approx queries": approx.metadata["approximate_queries"],
                "exact sec": exact_seconds,
                "approx sec": approx_seconds,
            }
        )

    print(render_table(rows, title=f"Exact greedy vs Approximate-Greedy (epsilon={epsilon})"))
    print()
    print(
        "Quality stays within a small constant factor while the exact algorithm's "
        "distance-query count grows quadratically and the approximate one's stays "
        "near-linear — Theorem 6 of the paper in action."
    )


if __name__ == "__main__":
    main()
