#!/usr/bin/env python3
"""The paper's core idea, end to end: existential vs universal optimality.

Three acts:

1. **Figure 1.**  Build the Petersen-plus-star graph of the paper's Figure 1
   and show that the greedy 3-spanner keeps all 15 girth-5 edges while the
   9-edge star is a valid, lighter 3-spanner — greedy is *not* universally
   optimal.
2. **Lemma 3 / Theorem 4.**  Show that the greedy spanner is its own only
   t-spanner (no edge is redundant), which is exactly why it is
   *existentially* optimal: whatever bound any construction achieves on every
   graph of a family, the greedy spanner achieves it too.
3. **Doubling metrics (Theorem 5).**  Run the same comparison through the
   induced metric of the greedy spanner, exercising Lemma 7 (weight) and
   Lemma 8 (size) on a concrete Euclidean instance.

Run with::

    python examples/existential_optimality.py
"""

from __future__ import annotations

from repro import analyse_figure1, greedy_spanner
from repro.core.greedy import greedy_spanner_of_metric
from repro.core.optimality import (
    build_metric_spanner_of_greedy,
    existential_optimality_certificate,
    verify_lemma3_self_spanner,
    verify_lemma7_weight,
    verify_lemma8_size,
)
from repro.experiments.reporting import render_table
from repro.graph.generators import random_connected_graph
from repro.metric.generators import uniform_points


def act_one_figure1() -> None:
    print("=" * 70)
    print("Act 1 - Figure 1: greedy is not universally optimal")
    print("=" * 70)
    report = analyse_figure1(epsilon=0.1, stretch=3.0)
    rows = [
        {"quantity": "greedy 3-spanner edges", "value": report.greedy_edges},
        {"quantity": "Petersen edges kept by greedy", "value": report.petersen_edges_kept},
        {"quantity": "star edges (the optimal spanner)", "value": report.star_edges},
        {"quantity": "greedy weight", "value": report.greedy_weight},
        {"quantity": "star weight", "value": report.star_weight},
        {"quantity": "star is a valid 3-spanner", "value": report.star_is_valid_spanner},
        {"quantity": "greedy universally optimal here", "value": report.greedy_is_universally_optimal},
        {
            "quantity": "greedy weight on the Petersen graph alone",
            "value": report.greedy_weight_on_petersen_alone,
        },
    ]
    print(render_table(rows))
    print(
        "\nThe star beats the greedy spanner on G — but the greedy spanner's weight "
        "equals the optimum of the high-girth graph H hiding inside G, which is all "
        "existential optimality promises.\n"
    )


def act_two_lemma3() -> None:
    print("=" * 70)
    print("Act 2 - Lemma 3 and Theorem 4 on a random weighted graph")
    print("=" * 70)
    graph = random_connected_graph(100, 0.1, seed=21)
    spanner = greedy_spanner(graph, 2.0)
    certificate = existential_optimality_certificate(graph, 2.0)
    rows = [
        {"check": "no single greedy edge is redundant (Lemma 3)", "holds": verify_lemma3_self_spanner(spanner)},
        {"check": "greedy no larger than any spanner of itself", "holds": certificate.greedy_no_larger},
        {"check": "greedy no heavier than any spanner of itself", "holds": certificate.greedy_no_heavier},
    ]
    print(render_table(rows))
    print(
        f"\ngreedy: {certificate.greedy_edges} edges, lightness "
        f"{certificate.greedy_lightness:.3f} (MST weight {certificate.shared_mst_weight:.2f})\n"
    )


def act_three_doubling() -> None:
    print("=" * 70)
    print("Act 3 - Lemmas 7 and 8 on a Euclidean (doubling) metric")
    print("=" * 70)
    metric = uniform_points(60, 2, seed=22)
    greedy = greedy_spanner_of_metric(metric, 1.5)
    competitor = build_metric_spanner_of_greedy(greedy, 1.5)
    rows = [
        {"quantity": "greedy edges", "value": greedy.number_of_edges},
        {"quantity": "competitor edges (spanner of M_H)", "value": competitor.number_of_edges},
        {"quantity": "greedy weight", "value": greedy.weight},
        {"quantity": "competitor weight", "value": competitor.total_weight()},
        {"quantity": "Lemma 7 (weight) holds", "value": verify_lemma7_weight(greedy, competitor)},
        {"quantity": "Lemma 8 (size) holds", "value": verify_lemma8_size(greedy, competitor)},
    ]
    print(render_table(rows))
    print(
        "\nAny spanner built on the metric induced by the greedy spanner is at least "
        "as large and as heavy — the engine behind Theorem 5 and Corollary 10.\n"
    )


def main() -> None:
    act_one_figure1()
    act_two_lemma3()
    act_three_doubling()


if __name__ == "__main__":
    main()
