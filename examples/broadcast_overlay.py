#!/usr/bin/env python3
"""Broadcast in a wireless-style network over different overlays.

The paper's Section 1.1 motivates light, sparse, low-degree spanners with
distributed applications: broadcast cost tracks the overlay's total weight,
delivery speed tracks its stretch, and per-node load tracks its degree.  This
example builds a random geometric ("wireless") network and floods a message
from one node over four overlays:

* the full network (fastest, most expensive),
* the MST (cheapest, slowest),
* the greedy 1.5-spanner (the paper's sweet spot),
* a Baswana–Sen 3-spanner (a sparse but heavier baseline).

It also prints the per-pulse cost of running a synchronizer on each overlay.

Run with::

    python examples/broadcast_overlay.py
"""

from __future__ import annotations

from repro import greedy_spanner
from repro.distributed.broadcast import compare_broadcast_overlays
from repro.distributed.synchronizer import compare_synchronizer_overlays
from repro.experiments.reporting import render_table
from repro.graph.generators import random_geometric_graph
from repro.spanners.baswana_sen import baswana_sen_spanner
from repro.spanners.trivial import mst_spanner


def main() -> None:
    network = random_geometric_graph(150, 0.15, seed=13)
    print(f"network: {network}")

    overlays = {
        "full-network": network,
        "mst": mst_spanner(network).subgraph,
        "greedy-1.5-spanner": greedy_spanner(network, 1.5).subgraph,
        "baswana-sen-3-spanner": baswana_sen_spanner(network, 2, seed=13).subgraph,
    }

    broadcast_rows = []
    for outcome in compare_broadcast_overlays(network, overlays):
        row = {"overlay": outcome.overlay_name}
        row.update(outcome.as_row())
        broadcast_rows.append(row)
    print()
    print(render_table(broadcast_rows, title="Flood broadcast from one source"))

    sync_rows = []
    for cost in compare_synchronizer_overlays(overlays, pulses=100):
        row = {"overlay": cost.overlay_name}
        row.update(cost.as_row())
        sync_rows.append(row)
    print()
    print(render_table(sync_rows, title="Synchronizer cost per overlay (100 pulses)"))

    print()
    print(
        "The greedy-spanner overlay delivers almost as fast as flooding the full "
        "network while paying close to the MST's communication cost — exactly the "
        "trade-off light spanners are built for."
    )


if __name__ == "__main__":
    main()
