#!/usr/bin/env python3
"""Broadcast in a wireless-style network over different overlays.

The paper's Section 1.1 motivates light, sparse, low-degree spanners with
distributed applications: broadcast cost tracks the overlay's total weight,
delivery speed tracks its stretch, and per-node load tracks its degree.  This
example builds a random geometric ("wireless") network, materializes four
overlays through the spanner-builder registry:

* the full network (fastest, most expensive),
* the MST (cheapest, slowest),
* the greedy 1.5-spanner (the paper's sweet spot),
* a Baswana–Sen 3-spanner (a sparse but heavier baseline),

then floods a message from one node over each and prints the per-pulse cost
of running a synchronizer on each — one pass through the unified comparison
harness, driven by the indexed overlay engine.

Run with::

    python examples/broadcast_overlay.py
"""

from __future__ import annotations

from repro.distributed.comparison import compare_overlays, overlays_from_builders
from repro.experiments.reporting import render_table
from repro.graph.generators import random_geometric_graph


def main() -> None:
    network = random_geometric_graph(150, 0.15, seed=13)
    print(f"network: {network}")

    overlays = overlays_from_builders(
        network,
        {
            "mst": {"builder": "mst"},
            "greedy-1.5-spanner": {"builder": "greedy"},
            "baswana-sen-3-spanner": {"builder": "baswana-sen", "k": 2, "seed": 13},
        },
        stretch=1.5,
        base_label="full-network",
    )

    comparison = compare_overlays(
        network, overlays, protocols=("broadcast", "synchronizer"), pulses=100
    )

    broadcast_rows = []
    for outcome in comparison.broadcast:
        row = {"overlay": outcome.overlay_name}
        row.update(outcome.as_row())
        broadcast_rows.append(row)
    print()
    print(render_table(broadcast_rows, title="Flood broadcast from one source"))

    sync_rows = []
    for cost in comparison.synchronizer:
        row = {"overlay": cost.overlay_name}
        row.update(cost.as_row())
        sync_rows.append(row)
    print()
    print(render_table(sync_rows, title="Synchronizer cost per overlay (100 pulses)"))

    print()
    print(
        "The greedy-spanner overlay delivers almost as fast as flooding the full "
        "network while paying close to the MST's communication cost — exactly the "
        "trade-off light spanners are built for."
    )


if __name__ == "__main__":
    main()
