#!/usr/bin/env python3
"""Compact routing over spanner overlays.

The paper's introduction notes that low-degree spanners keep routing state
small: the per-node port count is the overlay degree, and routed paths are at
most the overlay's stretch longer than optimal.  This example builds four
overlays of a random geometric network through the spanner-builder registry,
routes the same random demand set over each on the indexed engine (flat numpy
next-hop tables), and prints the trade-off — including the route-stretch
percentiles and the tables' byte footprint.

Run with::

    python examples/routing_tables.py
"""

from __future__ import annotations

from repro.distributed.comparison import compare_overlays, overlays_from_builders
from repro.experiments.reporting import render_table
from repro.graph.generators import random_geometric_graph


def main() -> None:
    network = random_geometric_graph(120, 0.18, seed=29)
    print(f"network: {network}")

    overlays = overlays_from_builders(
        network,
        {
            "greedy-1.5-spanner": {"builder": "greedy"},
            "baswana-sen": {"builder": "baswana-sen", "k": 2, "seed": 29},
            "mst": {"builder": "mst"},
        },
        stretch=1.5,
        base_label="full-network",
    )

    comparison = compare_overlays(
        network, overlays, protocols=("routing",), demand_count=200, seed=30
    )

    rows = []
    for report in comparison.routing:
        row = {"overlay": report.overlay_name}
        row.update(report.as_row())
        rows.append(row)

    print()
    print(render_table(rows, title="Routing 200 random demands over each overlay"))
    print()
    print(
        "The greedy-spanner overlay needs far fewer ports per node than the full "
        "network (smaller routing state) while every routed path stays within the "
        "1.5x stretch guarantee; the MST has the least state but the worst routes."
    )


if __name__ == "__main__":
    main()
