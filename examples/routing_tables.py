#!/usr/bin/env python3
"""Compact routing over spanner overlays.

The paper's introduction notes that low-degree spanners keep routing state
small: the per-node port count is the overlay degree, and routed paths are at
most the overlay's stretch longer than optimal.  This example routes the same
random demand set over four overlays of a random geometric network and prints
the trade-off.

Run with::

    python examples/routing_tables.py
"""

from __future__ import annotations

from repro import greedy_spanner
from repro.distributed.routing import compare_routing_overlays
from repro.experiments.reporting import render_table
from repro.graph.generators import random_geometric_graph
from repro.spanners.baswana_sen import baswana_sen_spanner
from repro.spanners.trivial import mst_spanner


def main() -> None:
    network = random_geometric_graph(120, 0.18, seed=29)
    print(f"network: {network}")

    overlays = {
        "full-network": network,
        "greedy-1.5-spanner": greedy_spanner(network, 1.5).subgraph,
        "baswana-sen": baswana_sen_spanner(network, 2, seed=29).subgraph,
        "mst": mst_spanner(network).subgraph,
    }

    rows = []
    for report in compare_routing_overlays(network, overlays, demand_count=200, seed=30):
        row = {"overlay": report.overlay_name}
        row.update(report.as_row())
        rows.append(row)

    print()
    print(render_table(rows, title="Routing 200 random demands over each overlay"))
    print()
    print(
        "The greedy-spanner overlay needs far fewer ports per node than the full "
        "network (smaller routing state) while every routed path stays within the "
        "1.5x stretch guarantee; the MST has the least state but the worst routes."
    )


if __name__ == "__main__":
    main()
