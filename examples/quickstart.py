#!/usr/bin/env python3
"""Quickstart: build, verify and measure a greedy spanner.

This example walks through the library's core loop on a random weighted
graph:

1. generate a workload,
2. run the greedy algorithm (Algorithm 1 of the paper) at a few stretch
   values,
3. verify the stretch guarantee,
4. measure size, weight, lightness and degree — the four quantities the
   paper's theorems are about,
5. check the two structural facts at the heart of the paper on this concrete
   instance: the spanner contains an MST (Observation 2) and is its own only
   t-spanner (Lemma 3).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import greedy_spanner
from repro.core.optimality import greedy_is_fixed_point, verify_observation2
from repro.experiments.reporting import render_table
from repro.graph.generators import random_connected_graph
from repro.graph.mst import mst_weight


def main() -> None:
    graph = random_connected_graph(200, 0.08, seed=7)
    print(f"workload: {graph}")
    print(f"MST weight: {mst_weight(graph):.2f}")
    print()

    rows = []
    for stretch in (1.5, 2.0, 3.0, 5.0):
        spanner = greedy_spanner(graph, stretch)
        spanner.verify_stretch()  # raises if the guarantee were violated
        stats = spanner.statistics(measure_stretch=True)
        rows.append(
            {
                "stretch": stretch,
                "edges": stats.edges,
                "weight": stats.weight,
                "lightness": stats.lightness,
                "max_degree": stats.max_degree,
                "measured_stretch": stats.measured_stretch,
                "contains_mst": verify_observation2(spanner),
                "own_only_spanner": greedy_is_fixed_point(spanner),
            }
        )

    print(render_table(rows, title="Greedy spanners of a 200-vertex random graph"))
    print()
    print(
        "Note how size, weight and lightness all shrink as the stretch grows, "
        "while every row keeps the MST (Observation 2) and is a fixed point of "
        "the greedy algorithm (Lemma 3)."
    )


if __name__ == "__main__":
    main()
