#!/usr/bin/env python3
"""Euclidean spanner shoot-out: greedy vs the classic constructions.

Reproduces, on a laptop-sized workload, the empirical claim quoted in the
paper's introduction (from the Farshi–Gudmundsson experimental studies): the
greedy spanner is roughly an order of magnitude sparser and far lighter than
the other popular Euclidean constructions at the same stretch.

The constructions compared:

* exact greedy (Algorithm 1 on the complete distance graph),
* approximate-greedy (Section 5 of the paper, Θ-graph base),
* Θ-graph,
* WSPD spanner,
* net-tree bounded-degree spanner (the Theorem 2 substrate),
* the MST (lightness 1, but not a valid (1+ε)-spanner — shown for scale).

Run with::

    python examples/euclidean_comparison.py [n]
"""

from __future__ import annotations

import sys

from repro import approximate_greedy_spanner, greedy_spanner_of_metric
from repro.experiments.reporting import render_table
from repro.metric.closure import MetricClosure
from repro.metric.generators import clustered_points, uniform_points
from repro.spanners.bounded_degree import bounded_degree_spanner
from repro.spanners.theta_graph import cones_for_stretch, theta_graph_spanner
from repro.spanners.trivial import mst_spanner
from repro.spanners.wspd import wspd_spanner


def compare(metric, stretch: float, workload_name: str) -> None:
    epsilon = stretch - 1.0
    constructions = {
        "greedy": greedy_spanner_of_metric(metric, stretch),
        "approx-greedy": approximate_greedy_spanner(metric, epsilon, base="theta"),
        "theta-graph": theta_graph_spanner(metric, cones_for_stretch(stretch)),
        "wspd": wspd_spanner(metric, stretch),
        "net-tree": bounded_degree_spanner(metric, epsilon),
        "mst (not a spanner)": mst_spanner(MetricClosure(metric)),
    }
    greedy_stats = constructions["greedy"].statistics()
    rows = []
    for name, spanner in constructions.items():
        stats = spanner.statistics()
        rows.append(
            {
                "algorithm": name,
                "edges": stats.edges,
                "weight": stats.weight,
                "lightness": stats.lightness,
                "max_degree": stats.max_degree,
                "x sparser than greedy": stats.edges / greedy_stats.edges,
                "x heavier than greedy": stats.weight / greedy_stats.weight,
            }
        )
    print(render_table(rows, title=f"{workload_name} (n={metric.size}, stretch={stretch})"))
    print()


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    stretch = 1.5
    compare(uniform_points(n, 2, seed=1), stretch, "Uniform points in the unit square")
    compare(
        clustered_points(n, 2, clusters=6, seed=2),
        stretch,
        "Clustered points (6 Gaussian clusters)",
    )
    print(
        "The greedy spanner wins on every quality column; the other constructions "
        "pay a large factor in both edges and weight — the gap the paper's "
        "existential-optimality theorems explain."
    )


if __name__ == "__main__":
    main()
